package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/nfa"
	"acep/internal/oracle"
	"acep/internal/pattern"
	"acep/internal/plan"
	"acep/internal/planner"
	"acep/internal/stats"
	"acep/internal/tree"
)

// HotpathIDs lists the single-engine hot-path experiments (not part of
// the paper's figure set): per-event cost of the steady-state inner loop,
// measured as throughput and allocation rate on a static plan, with the
// adaptation machinery out of the picture.
func HotpathIDs() []string { return []string{"hotpath-traffic", "hotpath-stocks"} }

// HotpathKinds lists the pattern families the hot-path experiment covers.
func HotpathKinds() []gen.Kind { return []gen.Kind{gen.Sequence, gen.Negation, gen.Kleene} }

// HotpathPoint is one measured (pattern kind, engine model) cell.
type HotpathPoint struct {
	Kind           string  `json:"kind"`
	Model          string  `json:"model"`
	Throughput     float64 `json:"events_per_sec"`
	BytesPerEvent  float64 `json:"b_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Matches        uint64  `json:"matches"`
	PMCreated      uint64  `json:"pm_created"`
	ElapsedMS      float64 `json:"elapsed_ms"`
}

// HotpathData is one recorded hot-path run. Phase labels the engine
// generation ("before"/"after" an optimization lands); runs accrue in
// BENCH_hotpath.json so per-event cost is tracked across changes. Match
// counts are part of the record: an optimization that changes any cell's
// match count against an earlier phase has changed the semantics, not
// just the speed.
type HotpathData struct {
	Phase   string         `json:"phase"`
	Dataset string         `json:"dataset"`
	Events  int            `json:"events"`
	Window  event.Time     `json:"window"`
	Cores   int            `json:"cores"`
	Points  []HotpathPoint `json:"points"`
}

// hotEval is the surface of a raw (non-adaptive) evaluation engine.
type hotEval interface {
	Process(*event.Event)
	Finish()
	Stats() nfa.Stats
}

// newStaticEval builds a raw engine over a plan generated once from exact
// statistics on the stream prefix — the steady-state inner loop with no
// adaptation machinery around it. When owned is set the emit callback is
// declared non-retaining, enabling the engines' recycling paths.
func newStaticEval(pat *pattern.Pattern, model engine.Model, snap *stats.Snapshot, owned bool, emit func(*match.Match)) (hotEval, error) {
	switch model {
	case engine.GreedyNFA:
		res := planner.Greedy{}.Generate(pat, snap)
		op, ok := res.Plan.(*plan.OrderPlan)
		if !ok {
			return nil, fmt.Errorf("bench: greedy produced %T, want *plan.OrderPlan", res.Plan)
		}
		g := nfa.New(pat, op, emit)
		if owned {
			g.SetOwnedEmit(true)
		}
		return g, nil
	case engine.ZStreamTree:
		res := planner.ZStream{}.Generate(pat, snap)
		tp, ok := res.Plan.(*plan.TreePlan)
		if !ok {
			return nil, fmt.Errorf("bench: zstream produced %T, want *plan.TreePlan", res.Plan)
		}
		g := tree.New(pat, tp, emit)
		if owned {
			g.SetOwnedEmit(true)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("bench: unknown model %v", model)
	}
}

// Hotpath measures the per-event cost of the steady-state hot path on one
// dataset: for every pattern family in HotpathKinds and both engine
// models, a full pass of the workload through a raw static-plan engine,
// reporting wall-clock throughput and the heap allocation rate
// (bytes/event and allocs/event via runtime.MemStats deltas).
//
// Correctness is locked before anything is timed: each (kind, model) cell
// is first cross-checked against the brute-force oracle on a small
// workload of the same regime, and within a kind both models must report
// the identical match count on the full measured stream.
func (h *Harness) Hotpath(dataset, phase string) (*HotpathData, error) {
	w := h.Workload(dataset)
	data := &HotpathData{
		Phase:   phase,
		Dataset: dataset,
		Events:  len(w.Events),
		Window:  h.Scale.Window,
		Cores:   runtime.NumCPU(),
	}
	models := []engine.Model{engine.GreedyNFA, engine.ZStreamTree}
	for _, kind := range HotpathKinds() {
		pat, err := w.Pattern(kind, 4, h.Scale.Window)
		if err != nil {
			return nil, err
		}
		snap := stats.Exact(pat, w.Events[:len(w.Events)/20+1])
		var kindMatches [2]uint64
		for mi, model := range models {
			if err := verifyHotpath(dataset, kind, model); err != nil {
				return nil, err
			}
			var matches uint64
			eng, err := newStaticEval(pat, model, snap, hotpathOwnedEmit, func(*match.Match) { matches++ })
			if err != nil {
				return nil, err
			}
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for i := range w.Events {
				eng.Process(&w.Events[i])
			}
			eng.Finish()
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			st := eng.Stats()
			n := float64(len(w.Events))
			data.Points = append(data.Points, HotpathPoint{
				Kind:           kind.String(),
				Model:          Combo{Model: model}.modelName(),
				Throughput:     n / elapsed.Seconds(),
				BytesPerEvent:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
				AllocsPerEvent: float64(m1.Mallocs-m0.Mallocs) / n,
				Matches:        matches,
				PMCreated:      st.PMCreated,
				ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
			})
			kindMatches[mi] = matches
		}
		if kindMatches[0] != kindMatches[1] {
			return nil, fmt.Errorf("bench: hotpath %s/%s: nfa found %d matches, tree %d — the engines diverged",
				dataset, kind, kindMatches[0], kindMatches[1])
		}
	}
	return data, nil
}

// hotpathOwnedEmit flags whether the measured engines run with the
// owned-emit (recycling) contract. The bench callback only counts, so
// owning is always safe here; the flag exists so a phase="before"
// record can be reproduced against engine generations without the knob.
const hotpathOwnedEmit = true

// modelName renders just the algorithm half of a combo name.
func (c Combo) modelName() string {
	if c.Model == engine.ZStreamTree {
		return "zstream"
	}
	return "greedy"
}

// verifyHotpath cross-checks one (dataset, kind, model) cell against the
// brute-force oracle on a small workload of the same regime, in both
// emit modes: the default (retaining) path via oracle.Keys, and the
// owned-emit (recycling) path — the one the measurement actually times —
// by computing each match's canonical key inside the callback, before
// the resolver reclaims the match's storage. A recycling bug that
// corrupts match contents while preserving counts fails here.
func verifyHotpath(dataset string, kind gen.Kind, model engine.Model) error {
	var w *gen.Workload
	switch dataset {
	case "traffic":
		w = gen.Traffic(gen.TrafficConfig{Types: 5, Events: 1200, Seed: 13, Shifts: 1, MeanGap: 3})
	case "stocks":
		w = gen.Stocks(gen.StocksConfig{Types: 5, Events: 1200, Seed: 13, MeanGap: 3})
	default:
		return fmt.Errorf("bench: unknown dataset %q", dataset)
	}
	pat, err := w.Pattern(kind, 3, 40)
	if err != nil {
		return err
	}
	snap := stats.Exact(pat, w.Events[:len(w.Events)/10+1])
	want := oracle.Keys(oracle.Matches(pat, w.Events))
	for _, owned := range []bool{false, true} {
		keys := make([]string, 0, len(want))
		eng, err := newStaticEval(pat, model, snap, owned, func(m *match.Match) {
			keys = append(keys, m.Key())
		})
		if err != nil {
			return err
		}
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		sort.Strings(keys)
		if !reflect.DeepEqual(keys, want) {
			return fmt.Errorf("bench: hotpath %s/%s/%v (owned=%v): engine found %d matches, oracle %d — refusing to time a wrong engine",
				dataset, kind, model, owned, len(keys), len(want))
		}
	}
	return nil
}

// Write prints the hot-path table.
func (d *HotpathData) Write(w io.Writer) {
	fmt.Fprintf(w, "Hot path (%s) — %s workload, %d events, window %d, %d cores\n",
		d.Phase, d.Dataset, d.Events, d.Window, d.Cores)
	fmt.Fprintf(w, "%-12s%-10s%14s%12s%14s%10s%12s\n",
		"kind", "model", "events/sec", "B/event", "allocs/event", "matches", "PMs")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-12s%-10s%14.0f%12.1f%14.4f%10d%12d\n",
			p.Kind, p.Model, p.Throughput, p.BytesPerEvent, p.AllocsPerEvent, p.Matches, p.PMCreated)
	}
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON object
// per invocation).
func (d *HotpathData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
