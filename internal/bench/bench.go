// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5 and Appendix A) on the
// synthetic stand-in workloads. See DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// All experiments are deterministic given a Scale (seed included); every
// compared adaptation method processes the identical event sequence.
package bench

import (
	"fmt"
	"time"

	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/stats"
)

// Combo is a dataset-algorithm pair, the unit the paper's figures are
// organized by.
type Combo struct {
	Dataset string // "traffic" or "stocks"
	Model   engine.Model
}

// String renders e.g. "traffic/greedy".
func (c Combo) String() string {
	alg := "greedy"
	if c.Model == engine.ZStreamTree {
		alg = "zstream"
	}
	return c.Dataset + "/" + alg
}

// Combos lists the four dataset-algorithm pairs of the evaluation.
func Combos() []Combo {
	return []Combo{
		{"traffic", engine.GreedyNFA},
		{"traffic", engine.ZStreamTree},
		{"stocks", engine.GreedyNFA},
		{"stocks", engine.ZStreamTree},
	}
}

// ComboByName resolves "traffic/greedy"-style names.
func ComboByName(name string) (Combo, error) {
	for _, c := range Combos() {
		if c.String() == name {
			return c, nil
		}
	}
	return Combo{}, fmt.Errorf("bench: unknown combo %q (want dataset/algorithm)", name)
}

// Scale controls experiment size; the defaults keep a full figure under a
// minute while preserving the paper's qualitative shapes. The CLI scales
// them up.
type Scale struct {
	// Events per measured run.
	Events int
	// Sizes is the pattern-size sweep (paper: 3..8).
	Sizes []int
	// Seed drives workload generation.
	Seed int64
	// Window is the pattern time window in logical ms.
	Window event.Time
	// CheckEvery is the adaptation check interval in events.
	CheckEvery int
	// Types is the number of event types in the generated workloads.
	Types int
	// Keys is the number of distinct partition keys in the keyed workload
	// variants used by the shard-scaling experiment (0 picks a per-dataset
	// default tuned for nonzero match counts; see KeyedWorkload).
	Keys int
}

// DefaultScale returns the scaled-down defaults used by `go test -bench`.
func DefaultScale() Scale {
	return Scale{
		Events:     60000,
		Sizes:      []int{3, 4, 5, 6, 7, 8},
		Seed:       1,
		Window:     150,
		CheckEvery: 500,
		Types:      10,
	}
}

// Workload generates (and caches per harness) the dataset for a combo.
func (s Scale) workload(dataset string) *gen.Workload {
	switch dataset {
	case "traffic":
		return gen.Traffic(gen.TrafficConfig{
			Types: s.Types, Events: s.Events, Seed: s.Seed, MeanGap: 2,
			Skew: 1.2, Shifts: 3,
		})
	case "stocks":
		return gen.Stocks(gen.StocksConfig{
			Types: s.Types, Events: s.Events, Seed: s.Seed, MeanGap: 2,
			DriftEvery: 400, DriftMag: 0.12,
		})
	default:
		panic("bench: unknown dataset " + dataset)
	}
}

// Result is the outcome of one measured run.
type Result struct {
	Throughput float64 // events/second (wall clock)
	Matches    uint64
	Reopts     uint64
	Overhead   float64 // fraction of wall time in D and A
	PMCreated  uint64
	Elapsed    time.Duration
}

// Harness caches workloads so the many runs of one experiment share the
// generated streams.
type Harness struct {
	Scale     Scale
	workloads map[string]*gen.Workload
	initial   map[*pattern.Pattern]*stats.Snapshot
}

// NewHarness builds a harness at the given scale.
func NewHarness(s Scale) *Harness {
	return &Harness{
		Scale:     s,
		workloads: make(map[string]*gen.Workload),
		initial:   make(map[*pattern.Pattern]*stats.Snapshot),
	}
}

// initialStats computes (and caches) the a-priori statistics every
// policy's initial plan is built from: exact statistics over the first 5%
// of the stream. This matches the paper's setup, where each system starts
// from a plan optimized for the initial data characteristics; the static
// baseline then keeps that plan while the shifts invalidate it.
func (h *Harness) initialStats(dataset string, pat *pattern.Pattern) *stats.Snapshot {
	if s, ok := h.initial[pat]; ok {
		return s
	}
	w := h.Workload(dataset)
	warm := len(w.Events) / 20
	if warm < 500 {
		warm = len(w.Events) / 2
	}
	s := stats.Exact(pat, w.Events[:warm])
	h.initial[pat] = s
	return s
}

// Workload returns the cached dataset.
func (h *Harness) Workload(dataset string) *gen.Workload {
	w, ok := h.workloads[dataset]
	if !ok {
		w = h.Scale.workload(dataset)
		h.workloads[dataset] = w
	}
	return w
}

// Pattern builds the pattern of a kind and size over the combo's dataset.
func (h *Harness) Pattern(c Combo, kind gen.Kind, size int) (*pattern.Pattern, error) {
	return h.Workload(c.Dataset).Pattern(kind, size, h.Scale.Window)
}

// Run measures one full pass of the combo's dataset through an adaptive
// engine with the given pattern and policy factory. Every run (any
// policy) starts from the same initial plan, built from exact statistics
// over the stream's first 5%.
func (h *Harness) Run(c Combo, pat *pattern.Pattern, newPolicy func() core.Policy) (Result, error) {
	w := h.Workload(c.Dataset)
	eng, err := engine.New(pat, engine.Config{
		Model:      c.Model,
		NewPolicy:  newPolicy,
		CheckEvery: h.Scale.CheckEvery,
		InitialStats: func(sub *pattern.Pattern) *stats.Snapshot {
			return h.initialStats(c.Dataset, sub)
		},
		OnMatch: func(*match.Match) {},
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	elapsed := time.Since(start)
	m := eng.Metrics()
	r := Result{
		Throughput: float64(len(w.Events)) / elapsed.Seconds(),
		Matches:    m.Matches,
		Reopts:     m.Reoptimizations,
		Overhead:   m.Overhead(elapsed),
		PMCreated:  m.PMCreated,
		Elapsed:    elapsed,
	}
	return r, nil
}

// RunBest measures the run repeats times and keeps the best throughput:
// the least-interference estimate, used by the tuning scans so that
// wall-clock noise does not distort d_opt / t_opt selection.
func (h *Harness) RunBest(c Combo, pat *pattern.Pattern, newPolicy func() core.Policy, repeats int) (Result, error) {
	var best Result
	for i := 0; i < repeats; i++ {
		r, err := h.Run(c, pat, newPolicy)
		if err != nil {
			return Result{}, err
		}
		if i == 0 || r.Throughput > best.Throughput {
			best = r
		}
	}
	return best, nil
}
