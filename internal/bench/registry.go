package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"acep/internal/gen"
)

// experimentSpec maps a paper table/figure id to what regenerates it.
type experimentSpec struct {
	id    string
	combo Combo
	// kind < 0 means "all kinds averaged" (main figures 6-9); otherwise a
	// single pattern set (appendix figures 10-29).
	kind int
	// fig5 / table1 flag experiments with their own runners.
	fig5, table1 bool
}

func specs() []experimentSpec {
	cs := Combos()
	out := []experimentSpec{
		{id: "fig5", fig5: true},
		{id: "table1", table1: true},
	}
	for i, c := range cs {
		out = append(out, experimentSpec{id: fmt.Sprintf("fig%d", 6+i), combo: c, kind: -1})
	}
	// Appendix: figs 10-29, grouped by pattern set, four combos each.
	for ki, kind := range gen.Kinds() {
		for ci, c := range cs {
			out = append(out, experimentSpec{
				id:    fmt.Sprintf("fig%d", 10+4*ki+ci),
				combo: c,
				kind:  int(kind),
			})
		}
	}
	return out
}

// ExperimentIDs lists every runnable paper experiment id (the tables and
// figures of the paper's evaluation). The shard-scaling experiments are
// listed separately by ScalingIDs.
func ExperimentIDs() []string {
	var ids []string
	for _, s := range specs() {
		ids = append(ids, s.id)
	}
	sort.Strings(ids)
	return ids
}

// ScalingIDs lists the shard-scaling experiments of the parallel
// execution layer (not part of the paper's figure set).
func ScalingIDs() []string { return []string{"scale-traffic", "scale-stocks"} }

// SheddingIDs lists the overload-control experiments of the shedding
// layer (not part of the paper's figure set).
func SheddingIDs() []string { return []string{"shed-traffic", "shed-stocks"} }

// tuned caches per-combo tuning (d_opt from the Figure 5 sweep, t_opt
// from the threshold scan) and the full method-comparison data so the
// main figure and the five appendix figures of one combo share a single
// measurement pass.
type tuned struct {
	dopt, topt float64
	fig5       *Fig5Data
	methods    *MethodsData
}

// Runner executes experiments by id, caching tuning per combo.
type Runner struct {
	H     *Harness
	cache map[string]*tuned
}

// NewRunner wraps a harness.
func NewRunner(h *Harness) *Runner {
	return &Runner{H: h, cache: make(map[string]*tuned)}
}

// tune computes (or returns cached) d_opt and t_opt for a combo.
func (r *Runner) tune(c Combo) (*tuned, error) {
	if t, ok := r.cache[c.String()]; ok {
		return t, nil
	}
	f5, err := r.H.Fig5(c, DefaultDGrid())
	if err != nil {
		return nil, err
	}
	topt, err := r.H.ScanThreshold(c, DefaultTGrid())
	if err != nil {
		return nil, err
	}
	t := &tuned{dopt: f5.BestD(), topt: topt, fig5: f5}
	r.cache[c.String()] = t
	return t, nil
}

// Run executes one experiment id and writes its tables to w. Scaling
// experiments run with the default shard sweep and batch size; use
// Harness.Scaling directly (cmd/acep-bench does) to control both.
func (r *Runner) Run(w io.Writer, id string) error {
	for _, sid := range ScalingIDs() {
		if id != sid {
			continue
		}
		d, err := r.H.Scaling(strings.TrimPrefix(id, "scale-"), DefaultShardCounts(), 0)
		if err != nil {
			return err
		}
		d.Write(w)
		return nil
	}
	for _, sid := range SheddingIDs() {
		if id != sid {
			continue
		}
		d, err := r.H.Shedding(strings.TrimPrefix(id, "shed-"), DefaultShedTargets(), ShedPolicyNames(), 0)
		if err != nil {
			return err
		}
		d.Write(w)
		return nil
	}
	for _, spec := range specs() {
		if spec.id != id {
			continue
		}
		switch {
		case spec.fig5:
			for _, c := range Combos() {
				t, err := r.tune(c)
				if err != nil {
					return err
				}
				t.fig5.Write(w)
				fmt.Fprintln(w)
			}
			return nil
		case spec.table1:
			var rows []Table1Row
			for _, c := range Combos() {
				t, err := r.tune(c)
				if err != nil {
					return err
				}
				cr, err := r.H.Table1(c, t.fig5)
				if err != nil {
					return err
				}
				rows = append(rows, cr...)
			}
			WriteTable1(w, rows)
			return nil
		default:
			t, err := r.tune(spec.combo)
			if err != nil {
				return err
			}
			if t.methods == nil {
				data, err := r.H.Methods(spec.combo, gen.Kinds(), t.topt, t.dopt)
				if err != nil {
					return err
				}
				t.methods = data
			}
			t.methods.WriteFigure(w, spec.kind)
			return nil
		}
	}
	return fmt.Errorf("bench: unknown experiment %q (known: %v)", id, ExperimentIDs())
}
