package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/multi"
)

// MultiIDs lists the multi-pattern sharing experiments.
func MultiIDs() []string { return []string{"multi-traffic", "multi-stocks"} }

// DefaultPatternCounts is the pattern-count sweep of the multi
// experiment.
func DefaultPatternCounts() []int { return []int{8, 32, 128} }

// multiOverlap and multiWindow fix the generated overlap sets: a
// 3-position shared SEQ prefix and a window sized to the multi
// workload's MeanGap-2 regime (the same shape the shard and cluster
// multi tests validate for exactness).
const (
	multiOverlap = 3
	multiWindow  = event.Time(400)
)

// MultiPoint is one pattern count's measurement: the sharing structure
// the analyzer found, and throughput of the shared evaluator against
// the same set run as independent engines over the same stream.
type MultiPoint struct {
	Patterns      int     `json:"patterns"`
	TotalUnary    int     `json:"total_unary"`
	DistinctUnary int     `json:"distinct_unary"`
	Groups        int     `json:"prefix_groups"`
	Grouped       int     `json:"grouped_patterns"`
	Matches       uint64  `json:"matches"`
	SharedTP      float64 `json:"shared_events_per_sec"`
	IndepTP       float64 `json:"independent_events_per_sec"`
	Speedup       float64 `json:"speedup"`
}

// MultiData is one dataset's multi-pattern sweep.
type MultiData struct {
	ID      string       `json:"id"`
	Dataset string       `json:"dataset"`
	Kind    string       `json:"kind"`
	Events  int          `json:"events"`
	Keys    int          `json:"keys"`
	Overlap int          `json:"overlap"`
	Window  int64        `json:"window"`
	Tenants int          `json:"tenants"`
	Cores   int          `json:"cores"`
	Points  []MultiPoint `json:"points"`
}

// MultiWorkload returns (and caches) the keyed workload the multi
// experiment runs on. The regime is narrower than KeyedWorkload's —
// seven types and few keys — because the generated overlap sets chain
// same-key events across overlap+1 types, and the wider regimes starve
// those chains below measurable match counts.
func (h *Harness) MultiWorkload(dataset string) *gen.Workload {
	name := "multi/" + dataset
	if w, ok := h.workloads[name]; ok {
		return w
	}
	var w *gen.Workload
	switch dataset {
	case "traffic":
		w = gen.Traffic(gen.TrafficConfig{
			Types: 7, Events: h.Scale.Events, Seed: h.Scale.Seed,
			Shifts: 1, MeanGap: 2, Keys: 2,
		})
	case "stocks":
		w = gen.Stocks(gen.StocksConfig{
			Types: 7, Events: h.Scale.Events, Seed: h.Scale.Seed,
			MeanGap: 2, DriftEvery: 300, Keys: 8,
		})
	default:
		panic("bench: unknown dataset " + dataset)
	}
	h.workloads[name] = w
	return w
}

// multisetDigest summarizes a match stream order-insensitively: each
// match key's FNV-1a hash is summed (wrapping) into one accumulator.
// Equal digests mean equal per-pattern match multisets, which is the
// sharing layer's exactness contract — the shared evaluator may emit a
// burst of same-event matches in a different interleaving than an
// independent engine, so the cluster layer's order-sensitive digest
// would false-positive here.
type multisetDigest struct {
	sum uint64
	n   uint64
}

func (d *multisetDigest) add(m *match.Match) {
	h := uint64(14695981039346656037)
	k := m.Key()
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	d.sum += h
	d.n++
}

// Multi sweeps pattern counts over the dataset's overlap sets and
// measures shared evaluation (one Evaluator hosting the whole set)
// against independent evaluation (one engine per pattern, fed the same
// stream sequentially). Both modes see identical events; every rep's
// per-pattern match multisets are digest-verified identical between
// modes — a divergence is an error, not a data point.
func (h *Harness) Multi(dataset string, counts []int) (*MultiData, error) {
	if len(counts) == 0 {
		counts = DefaultPatternCounts()
	}
	return h.multiSweep(h.MultiWorkload(dataset), gen.PatternSetSpec{
		Dataset: dataset, Kind: gen.Sequence,
		Overlap: multiOverlap, Window: multiWindow, Tenants: 1,
	}, counts)
}

// MultiSet runs the multi experiment over an explicit pattern-set spec
// (an acep-gen -patterns file): the spec pins the dataset regime, suffix
// kind, overlap, window and tenant assignment, so the measured set is
// exactly the one other tools loaded from the same file. counts defaults
// to the spec's own size.
func (h *Harness) MultiSet(spec gen.PatternSetSpec, counts []int) (*MultiData, error) {
	w, err := spec.Workload(h.Scale.Events, h.Scale.Seed)
	if err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		counts = []int{spec.Patterns}
	}
	return h.multiSweep(w, spec, counts)
}

// multiSweep measures every pattern count of one sweep; spec supplies
// the set-shape parameters (its Patterns field is ignored in favor of
// the sweep counts).
func (h *Harness) multiSweep(w *gen.Workload, spec gen.PatternSetSpec, counts []int) (*MultiData, error) {
	data := &MultiData{
		ID:      "multi-" + spec.Dataset,
		Dataset: spec.Dataset,
		Kind:    spec.Kind.String(),
		Events:  len(w.Events),
		Keys:    w.Keys,
		Overlap: spec.Overlap,
		Window:  int64(spec.Window),
		Tenants: spec.Tenants,
		Cores:   runtime.NumCPU(),
	}
	for _, n := range counts {
		entries, err := w.OverlapPatterns(spec.Kind, n, spec.Overlap, spec.Window, spec.Tenants)
		if err != nil {
			return nil, err
		}
		specs := make([]multi.Spec, len(entries))
		for i, e := range entries {
			specs[i] = multi.Spec{
				ID: e.ID, Tenant: e.Tenant, Pattern: e.Pattern,
				Config: engine.Config{CheckEvery: h.Scale.CheckEvery},
			}
		}
		p, err := h.multiPoint(w, specs)
		if err != nil {
			return nil, fmt.Errorf("bench: multi %s n=%d: %w", spec.Dataset, n, err)
		}
		data.Points = append(data.Points, p)
	}
	return data, nil
}

// multiMeasureReps is the repetition count per interleaved mode round.
const multiMeasureReps = 3

// multiPoint measures one pattern count. The modes interleave per rep
// (shared then independent) so a paired speedup never compounds
// scheduler noise across independent passes; the recorded point is each
// mode's fastest rep.
func (h *Harness) multiPoint(w *gen.Workload, specs []multi.Spec) (MultiPoint, error) {
	set, err := multi.Analyze(specs, w.Schema)
	if err != nil {
		return MultiPoint{}, err
	}
	rep := set.Report()
	p := MultiPoint{
		Patterns:      rep.Patterns,
		TotalUnary:    rep.TotalUnary,
		DistinctUnary: rep.DistinctUnary,
		Groups:        rep.Groups,
		Grouped:       rep.GroupedPatterns,
	}
	var ref map[uint32]multisetDigest
	bestShared, bestIndep := time.Duration(0), time.Duration(0)
	for r := 0; r < multiMeasureReps; r++ {
		shared, sd, err := h.multiRunShared(w, specs)
		if err != nil {
			return p, err
		}
		indep, id := h.multiRunIndependent(w, specs)
		if ref == nil {
			ref = sd
		}
		for _, mode := range []struct {
			name string
			d    map[uint32]multisetDigest
		}{{"shared", sd}, {"independent", id}} {
			if err := multiDigestsEqual(specs, ref, mode.d); err != nil {
				return p, fmt.Errorf("%s rep %d: %w", mode.name, r, err)
			}
		}
		if bestShared == 0 || shared < bestShared {
			bestShared = shared
		}
		if bestIndep == 0 || indep < bestIndep {
			bestIndep = indep
		}
	}
	for _, sp := range specs {
		p.Matches += ref[sp.ID].n
	}
	if p.Matches == 0 {
		return p, fmt.Errorf("no matches across %d patterns; experiment is vacuous", len(specs))
	}
	p.SharedTP = float64(len(w.Events)) / bestShared.Seconds()
	p.IndepTP = float64(len(w.Events)) / bestIndep.Seconds()
	p.Speedup = bestIndep.Seconds() / bestShared.Seconds()
	return p, nil
}

// multiRunShared drives the stream through one shared evaluator and
// returns the elapsed time plus per-pattern match digests.
func (h *Harness) multiRunShared(w *gen.Workload, specs []multi.Spec) (time.Duration, map[uint32]multisetDigest, error) {
	set, err := multi.Analyze(specs, w.Schema)
	if err != nil {
		return 0, nil, err
	}
	digests := make(map[uint32]multisetDigest, len(specs))
	ev, err := multi.NewEvaluator(set, multi.Options{
		OnMatch: func(id uint32, m *match.Match) {
			d := digests[id]
			d.add(m)
			digests[id] = d
		},
	})
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	for i := range w.Events {
		ev.Process(&w.Events[i])
	}
	ev.Finish()
	return time.Since(start), digests, nil
}

// multiRunIndependent is the baseline: one plain engine per pattern,
// each fed the full stream, timed as one sequential pass over the set
// (the cost a deployment without sharing pays per core).
func (h *Harness) multiRunIndependent(w *gen.Workload, specs []multi.Spec) (time.Duration, map[uint32]multisetDigest) {
	digests := make(map[uint32]multisetDigest, len(specs))
	var elapsed time.Duration
	for _, sp := range specs {
		cfg := sp.Config
		var d multisetDigest
		cfg.OnMatch = d.add
		eng, err := engine.New(sp.Pattern, cfg)
		if err != nil {
			// Specs were already validated by Analyze in the shared run.
			panic(err)
		}
		start := time.Now()
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		elapsed += time.Since(start)
		digests[sp.ID] = d
	}
	return elapsed, digests
}

// multiDigestsEqual demands identical per-pattern match multisets
// between two runs.
func multiDigestsEqual(specs []multi.Spec, want, got map[uint32]multisetDigest) error {
	for _, sp := range specs {
		w, g := want[sp.ID], got[sp.ID]
		if w.n != g.n || w.sum != g.sum {
			return fmt.Errorf("pattern %d delivered %d matches (digest %x), reference %d (digest %x)",
				sp.ID, g.n, g.sum, w.n, w.sum)
		}
	}
	return nil
}

// Write prints the multi-pattern sharing table.
func (d *MultiData) Write(w io.Writer) {
	fmt.Fprintf(w, "Multi-pattern sharing — %s workload, %s suffixes, %d events, %d keys, overlap %d, window %d, %d tenant(s), %d cores\n",
		d.Dataset, d.Kind, d.Events, d.Keys, d.Overlap, d.Window, d.Tenants, d.Cores)
	fmt.Fprintf(w, "%10s%12s%10s%9s%12s%14s%14s%9s\n",
		"patterns", "preds", "distinct", "groups", "matches", "shared e/s", "indep e/s", "speedup")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%10d%12d%10d%9d%12d%14.0f%14.0f%8.2fx\n",
			p.Patterns, p.TotalUnary, p.DistinctUnary, p.Groups, p.Matches,
			p.SharedTP, p.IndepTP, p.Speedup)
	}
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON
// object per invocation).
func (d *MultiData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
