package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"acep/internal/cluster"
	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/pattern"
	"acep/internal/shard"
	"acep/internal/stats"
)

// ElasticIDs lists the elasticity experiments.
func ElasticIDs() []string { return []string{"elastic-traffic", "elastic-stocks"} }

// elasticModes are the three runs of the scale-out experiment, in
// measurement order (the balanced run first: it is the recovery target
// the join runs are scored against).
const (
	elasticBalanced  = "balanced"       // 3 nodes from the start
	elasticStatic    = "join-static"    // 2 nodes + idle joiner (rebalance off)
	elasticRebalance = "join-rebalance" // 2 nodes + joiner, controller on
)

// ElasticPoint is one measured run of the scale-out experiment.
type ElasticPoint struct {
	Mode        string `json:"mode"`
	Nodes       int    `json:"nodes"` // final node count
	TotalShards int    `json:"total_shards"`
	Batch       int    `json:"batch"`
	// Throughput is the whole-stream rate (stats-wait stall excluded —
	// see elasticRun). PreTP covers the stream before the join point and
	// PostTP the rest; TailTP covers the final third only — after the
	// join runs' migrations have landed — and includes the Finish drain.
	// Every mode records all three over the same event ranges, so tails
	// compare like for like.
	Throughput float64 `json:"events_per_sec"`
	PreTP      float64 `json:"pre_join_events_per_sec"`
	PostTP     float64 `json:"post_join_events_per_sec"`
	TailTP     float64 `json:"tail_events_per_sec"`
	// RecoveryRatio is this run's TailTP over the balanced run's: 1.0
	// means the joined cluster fully caught the natively balanced one in
	// steady state.
	RecoveryRatio float64 `json:"recovery_ratio,omitempty"`
	// RecoveryMS is AddNode -> the last completed migration onto the
	// joiner (0 when nothing moved).
	RecoveryMS float64 `json:"recovery_ms,omitempty"`
	// Migrations counts every controller move of the run; ToJoiner the
	// subset that landed on the joined node.
	Migrations int `json:"migrations"`
	ToJoiner   int `json:"migrations_to_joiner,omitempty"`
	// MaxPauseMS is the longest single-shard delivery freeze across the
	// run's migrations; ReplayEvents sums the journaled history replayed
	// to migration destinations.
	MaxPauseMS   float64 `json:"max_pause_ms,omitempty"`
	ReplayEvents int     `json:"replay_events,omitempty"`
	Matches      uint64  `json:"matches"`
}

// ElasticData is the scale-out experiment of the elasticity layer: the
// identical skewed keyed workload runs through (a) a balanced 3-node
// loopback-TCP cluster, (b) a 2-node cluster that admits a bare third
// node mid-stream but never hands it shards (rebalance off), and (c)
// the same join with the placement controller on, which must migrate
// load onto the joiner. Every run's match stream is verified against
// the single-process sharded engine at the same total shard count.
// Recorded runs accrue in BENCH_elastic.json.
type ElasticData struct {
	Dataset     string         `json:"dataset"`
	Events      int            `json:"events"`
	Keys        int            `json:"keys"`
	TotalShards int            `json:"total_shards"`
	Batch       int            `json:"batch"`
	JoinEvent   int            `json:"join_event"`
	Cores       int            `json:"cores"`
	Transport   string         `json:"transport"`
	Points      []ElasticPoint `json:"points"`
}

// Elastic measures the scale-out story on the keyed dataset (the
// traffic regime's Zipf key skew is the "hot shard" source; stocks is
// the near-uniform control). shardsPerNode is the balanced
// configuration's per-node count (default 2, rounded up to even so the
// 2-node join runs split the same global total). batch <= 0 uses the
// layer default. A match-stream divergence in any run is an error, not
// a data point.
func (h *Harness) Elastic(dataset string, shardsPerNode, batch int) (*ElasticData, error) {
	if shardsPerNode <= 0 {
		shardsPerNode = 2
	}
	if shardsPerNode%2 == 1 {
		shardsPerNode++ // total = 3*spn must also split across 2 nodes
	}
	if batch <= 0 {
		batch = DefaultClusterBatch
	}
	total := 3 * shardsPerNode
	w := h.KeyedWorkload(dataset)
	pat, err := w.Pattern(gen.Sequence, 4, h.Scale.Window*16)
	if err != nil {
		return nil, err
	}
	initial := stats.Exact(pat, w.Events[:len(w.Events)/20+1])
	cfg := func() engine.Config {
		return engine.Config{
			CheckEvery:   h.Scale.CheckEvery,
			NewPolicy:    func() core.Policy { return &core.Invariant{} },
			InitialStats: func(*pattern.Pattern) *stats.Snapshot { return initial },
		}
	}
	joinAt := len(w.Events) / 3
	data := &ElasticData{
		Dataset:     dataset,
		Events:      len(w.Events),
		Keys:        w.Keys,
		TotalShards: total,
		Batch:       batch,
		JoinEvent:   joinAt,
		Cores:       runtime.NumCPU(),
		Transport:   "loopback-tcp",
	}

	// Single-process reference digest at the same total shard count.
	var ref matchDigest
	refEng, err := shard.New(pat, cfg(), shard.Options{
		Shards: total, Batch: batch, KeyAttr: "key", Schema: w.Schema,
		OnMatch: ref.add,
	})
	if err != nil {
		return nil, err
	}
	for i := range w.Events {
		refEng.Process(&w.Events[i])
	}
	refEng.Finish()

	// Repetitions interleave the three modes so each rep's recovery
	// ratios pair runs taken back to back — a run lasts well under a
	// second, so independent passes are scheduler-noise dominated and a
	// ratio of two independent bests would compound that noise. Every
	// repetition's digest is still cross-checked; the recorded point per
	// mode is its fastest-tail rep, and the recovery ratio the best
	// paired one.
	modes := []string{elasticBalanced, elasticStatic, elasticRebalance}
	best := make(map[string]ElasticPoint, len(modes))
	ratio := make(map[string]float64, len(modes))
	for rep := 0; rep < elasticMeasureReps; rep++ {
		pts := make(map[string]ElasticPoint, len(modes))
		for _, mode := range modes {
			p, digest, err := h.elasticRun(w, pat, cfg, mode, total, batch, joinAt)
			if err != nil {
				return nil, err
			}
			if digest.n != ref.n || digest.h != ref.h {
				return nil, fmt.Errorf("bench: elastic %s mode=%s delivered %d matches (digest %x), reference %d (digest %x) — elasticity changed the match stream",
					dataset, mode, digest.n, digest.h, ref.n, ref.h)
			}
			pts[mode] = p
			if b, ok := best[mode]; !ok || p.TailTP > b.TailTP {
				best[mode] = p
			}
		}
		for _, mode := range modes[1:] {
			if r := pts[mode].TailTP / pts[elasticBalanced].TailTP; r > ratio[mode] {
				ratio[mode] = r
			}
		}
	}
	for _, mode := range modes {
		p := best[mode]
		p.RecoveryRatio = ratio[mode]
		data.Points = append(data.Points, p)
	}
	return data, nil
}

// elasticMeasureReps is the repetition count per interleaved mode round.
const elasticMeasureReps = 3

// elasticRun executes one run of the experiment. The join modes start
// with 2 nodes hosting all shards and admit a bare joiner at joinAt; in
// rebalance mode the run then stalls (untimed) until the worker nodes'
// ShardStats have reached the coordinator — load telemetry rides the
// upstream frame flow, so an unpaced coordinator outruns it, and a real
// deployment's continuous stream has no such race to begin with.
func (h *Harness) elasticRun(w *gen.Workload, pat *pattern.Pattern, cfg func() engine.Config,
	mode string, total, batch, joinAt int) (ElasticPoint, matchDigest, error) {
	var digest matchDigest
	p := ElasticPoint{Mode: mode, TotalShards: total, Batch: batch}
	fail := func(err error) (ElasticPoint, matchDigest, error) { return p, digest, err }

	startNode := func(bare bool, shards int) (*cluster.Listener, error) {
		nc := cluster.NodeConfig{
			Engine: cfg(), Shards: shards, Batch: batch, KeyAttr: "key",
		}
		if !bare {
			nc.Pattern, nc.Schema = pat, w.Schema
		}
		node, err := cluster.NewNode(nc)
		if err != nil {
			return nil, err
		}
		l, err := cluster.ListenTCP("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go node.ServeListener(l, nil) //nolint:errcheck // closed below
		return l, nil
	}

	initNodes := 3
	join := mode != elasticBalanced
	if join {
		initNodes = 2
	}
	var listeners []*cluster.Listener
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	conns := make([]cluster.Conn, initNodes)
	for i := 0; i < initNodes; i++ {
		l, err := startNode(false, total/initNodes)
		if err != nil {
			return fail(err)
		}
		listeners = append(listeners, l)
		if conns[i], err = cluster.DialTCP(l.Addr()); err != nil {
			return fail(err)
		}
	}
	var joiner *cluster.Listener
	if join {
		l, err := startNode(true, total/3)
		if err != nil {
			return fail(err)
		}
		listeners = append(listeners, l)
		joiner = l
	}

	opts := cluster.IngressOptions{
		Batch: batch, KeyAttr: "key", Schema: w.Schema,
		OnMatch: digest.add,
		// The tightest safe retention horizon: migration replay volume is
		// proportional to it, and this experiment is about moves, not
		// crash history.
		Recovery: &cluster.RecoveryConfig{SlackWindows: 1},
	}
	if mode == elasticRebalance {
		// MinWaitP99 is a production floor against migrating an idle
		// cluster; this run constructs the overload, so only the ratio
		// gates. Default hysteresis/cooldown otherwise: an empty joiner is
		// always the coldest node, so the scale-out moves fire regardless,
		// and the wide ratio keeps the controller from flapping once the
		// joiner carries its share.
		opts.Elastic = &cluster.ElasticConfig{Rebalance: true, MinWaitP99: 1}
	}
	ing, err := cluster.NewIngress(pat, conns, opts)
	if err != nil {
		return fail(err)
	}

	joinSlot := -1
	tailAt := joinAt * 2 // migrations land in the middle third; the tail is steady state
	var joinTime time.Time
	var preDur, midDur, stallDur time.Duration
	start := time.Now()
	for i := range w.Events {
		if i == joinAt {
			preDur = time.Since(start)
			if join {
				c, err := cluster.DialTCP(joiner.Addr())
				if err != nil {
					return fail(err)
				}
				if joinSlot, err = ing.AddNode(c); err != nil {
					return fail(fmt.Errorf("bench: elastic join: %w", err))
				}
				joinTime = time.Now()
				if mode == elasticRebalance {
					if err := waitForNodeStats(ing, initNodes, 10*time.Second); err != nil {
						return fail(err)
					}
					stallDur = time.Since(joinTime)
				}
			}
		}
		if i == tailAt {
			midDur = time.Since(start) - stallDur
		}
		ing.Process(&w.Events[i])
	}
	if err := ing.Finish(); err != nil {
		return fail(fmt.Errorf("bench: elastic %s finish: %w", mode, err))
	}
	elapsed := time.Since(start) - stallDur
	if fos := ing.Failovers(); len(fos) != 0 {
		return fail(fmt.Errorf("bench: elastic %s failed over: %+v", mode, fos))
	}

	p.Nodes = ing.Nodes()
	p.Throughput = float64(len(w.Events)) / elapsed.Seconds()
	p.PreTP = float64(joinAt) / preDur.Seconds()
	p.PostTP = float64(len(w.Events)-joinAt) / (elapsed - preDur).Seconds()
	p.TailTP = float64(len(w.Events)-tailAt) / (elapsed - midDur).Seconds()
	migs := ing.Migrations()
	if mode != elasticRebalance && len(migs) != 0 {
		return fail(fmt.Errorf("bench: elastic %s migrated without a controller: %+v", mode, migs))
	}
	p.Migrations = len(migs)
	var lastJoiner time.Time
	for _, m := range migs {
		if m.CompletedAt.IsZero() {
			return fail(fmt.Errorf("bench: elastic migration of shard %d never completed", m.Shard))
		}
		if ms := float64(m.Pause().Microseconds()) / 1000; ms > p.MaxPauseMS {
			p.MaxPauseMS = ms
		}
		p.ReplayEvents += m.ReplayEvents
		if m.To == joinSlot {
			p.ToJoiner++
			if m.CompletedAt.After(lastJoiner) {
				lastJoiner = m.CompletedAt
			}
		}
	}
	if mode == elasticRebalance {
		if p.ToJoiner == 0 {
			return fail(fmt.Errorf("bench: elastic controller never moved a shard to the joiner (migrations: %+v)", migs))
		}
		p.RecoveryMS = float64(lastJoiner.Sub(joinTime).Microseconds()) / 1000
	}
	p.Matches = digest.n
	return p, digest, nil
}

// waitForNodeStats blocks until `nodes` slots have reported per-shard
// load, erroring at the deadline.
func waitForNodeStats(ing *cluster.Ingress, nodes int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		got := 0
		for _, ss := range ing.NodeStats() {
			if len(ss) > 0 {
				got++
			}
		}
		if got >= nodes {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: elastic: %d/%d nodes reported shard stats before deadline", got, nodes)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Write prints the elasticity table.
func (d *ElasticData) Write(w io.Writer) {
	fmt.Fprintf(w, "Elastic scale-out — %s workload, %d events, %d keys, %d shards, batch %d, join at %d, %s, %d cores\n",
		d.Dataset, d.Events, d.Keys, d.TotalShards, d.Batch, d.JoinEvent, d.Transport, d.Cores)
	fmt.Fprintf(w, "%-16s%7s%14s%14s%14s%10s%12s%7s%12s%10s\n",
		"mode", "nodes", "events/sec", "post e/s", "tail e/s", "recovery", "recover ms", "moves", "max pause", "replayed")
	for _, p := range d.Points {
		rec := "-"
		if p.RecoveryRatio > 0 {
			rec = fmt.Sprintf("%.0f%%", 100*p.RecoveryRatio)
		}
		fmt.Fprintf(w, "%-16s%7d%14.0f%14.0f%14.0f%10s%12.1f%7d%10.2fms%10d\n",
			p.Mode, p.Nodes, p.Throughput, p.PostTP, p.TailTP, rec, p.RecoveryMS, p.Migrations, p.MaxPauseMS, p.ReplayEvents)
	}
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON
// object per invocation).
func (d *ElasticData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
