package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/shard"
	"acep/internal/stats"
)

// DefaultShardCounts is the shard sweep of the scaling experiment.
func DefaultShardCounts() []int { return []int{1, 2, 4, 8} }

// ShardCountsUpTo returns the powers of two up to max (inclusive of max
// itself when it is not a power of two).
func ShardCountsUpTo(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// ScalingPoint is one measured shard count.
type ScalingPoint struct {
	Shards     int     `json:"shards"`
	Throughput float64 `json:"events_per_sec"`
	Speedup    float64 `json:"speedup"` // vs the 1-shard sharded baseline
	Matches    uint64  `json:"matches"`
	Reopts     uint64  `json:"reopts"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// ScalingData is the throughput-vs-shard-count experiment of the sharded
// execution layer, run on a keyed variant of one of the two workloads.
// Recorded runs accrue in BENCH_scaling.json so the scaling trajectory is
// tracked across changes.
type ScalingData struct {
	Dataset string         `json:"dataset"`
	Events  int            `json:"events"`
	Keys    int            `json:"keys"`
	Batch   int            `json:"batch"`
	Cores   int            `json:"cores"`
	Points  []ScalingPoint `json:"points"`
}

// KeyedWorkload returns (and caches) the keyed variant of a dataset: the
// same generator regime plus a partition-key attribute, so patterns built
// over it carry equality-on-key predicates and shard exactly.
func (h *Harness) KeyedWorkload(dataset string) *gen.Workload {
	name := "keyed/" + dataset
	if w, ok := h.workloads[name]; ok {
		return w
	}
	keys := h.Scale.Keys
	if keys <= 0 {
		// Per-dataset defaults chosen so the size-4 keyed sequence pattern
		// actually fires at default scale: the traffic regime's Zipf skew
		// makes same-key chains far rarer than the stocks regime's
		// near-uniform rates.
		keys = 32
		if dataset == "traffic" {
			keys = 8
		}
	}
	var w *gen.Workload
	switch dataset {
	case "traffic":
		w = gen.Traffic(gen.TrafficConfig{
			Types: h.Scale.Types, Events: h.Scale.Events, Seed: h.Scale.Seed,
			MeanGap: 2, Skew: 1.2, Shifts: 3, Keys: keys,
		})
	case "stocks":
		w = gen.Stocks(gen.StocksConfig{
			Types: h.Scale.Types, Events: h.Scale.Events, Seed: h.Scale.Seed,
			MeanGap: 2, DriftEvery: 400, DriftMag: 0.12, Keys: keys,
		})
	default:
		panic("bench: unknown dataset " + dataset)
	}
	h.workloads[name] = w
	return w
}

// Scaling measures events/sec of the sharded engine over the shard-count
// sweep on the keyed dataset, with a size-4 keyed sequence pattern and
// the invariant policy per shard. batch <= 0 uses the shard layer's
// default. Every shard count processes the identical event sequence and
// must produce the identical match count (verified; a mismatch is an
// error, not a data point).
func (h *Harness) Scaling(dataset string, shardCounts []int, batch int) (*ScalingData, error) {
	if len(shardCounts) == 0 {
		shardCounts = DefaultShardCounts()
	}
	w := h.KeyedWorkload(dataset)
	// The window is wider than the paper experiments': equality-on-key
	// prunes partial matches so hard that same-key sequences need a longer
	// horizon to occur at all.
	pat, err := w.Pattern(gen.Sequence, 4, h.Scale.Window*16)
	if err != nil {
		return nil, err
	}
	keys := w.Keys
	data := &ScalingData{
		Dataset: dataset,
		Events:  len(w.Events),
		Keys:    keys,
		Batch:   batch,
		Cores:   runtime.NumCPU(),
	}
	initial := stats.Exact(pat, w.Events[:len(w.Events)/20+1])
	for _, n := range shardCounts {
		var matches uint64
		eng, err := shard.New(pat, engine.Config{
			CheckEvery:   h.Scale.CheckEvery,
			NewPolicy:    func() core.Policy { return &core.Invariant{} },
			InitialStats: func(*pattern.Pattern) *stats.Snapshot { return initial },
		}, shard.Options{
			Shards:  n,
			Batch:   batch,
			KeyAttr: "key",
			Schema:  w.Schema,
			OnMatch: func(*match.Match) { matches++ },
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		elapsed := time.Since(start)
		m := eng.Metrics()
		p := ScalingPoint{
			Shards:     n,
			Throughput: float64(len(w.Events)) / elapsed.Seconds(),
			Matches:    matches,
			Reopts:     m.Reoptimizations,
			ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
		}
		if len(data.Points) > 0 {
			if p.Matches != data.Points[0].Matches {
				return nil, fmt.Errorf("bench: scaling %s shards=%d found %d matches, baseline found %d — sharding changed the match set",
					dataset, n, p.Matches, data.Points[0].Matches)
			}
			p.Speedup = p.Throughput / data.Points[0].Throughput
		} else {
			p.Speedup = 1
		}
		data.Points = append(data.Points, p)
	}
	return data, nil
}

// Write prints the scaling table.
func (d *ScalingData) Write(w io.Writer) {
	fmt.Fprintf(w, "Shard scaling — %s workload, %d events, %d keys, %d cores\n",
		d.Dataset, d.Events, d.Keys, d.Cores)
	fmt.Fprintf(w, "%-8s%14s%10s%10s%10s\n", "shards", "events/sec", "speedup", "matches", "reopts")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-8d%14.0f%9.2fx%10d%10d\n", p.Shards, p.Throughput, p.Speedup, p.Matches, p.Reopts)
	}
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON object
// per invocation).
func (d *ScalingData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
