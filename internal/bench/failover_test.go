package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestFailoverExperiment: one tiny sweep point end to end — both runs
// digest-identical to the reference (asserted inside Failover), one
// failover recorded with real replay volume, sane table/JSON output.
func TestFailoverExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("failover experiment in -short mode")
	}
	sc := DefaultScale()
	sc.Events = 12000
	h := NewHarness(sc)
	d, err := h.Failover("traffic", []FailoverSweep{{Nodes: 3, SlackWindows: 2}}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 1 {
		t.Fatalf("%d points", len(d.Points))
	}
	p := d.Points[0]
	if p.Nodes != 3 || p.TotalShards != 6 {
		t.Fatalf("bad layout: %+v", p)
	}
	if p.Matches == 0 {
		t.Fatal("vacuous run: no matches")
	}
	if p.HealthyTP <= 0 || p.FailoverTP <= 0 {
		t.Fatalf("bad throughputs: %+v", p)
	}
	if p.ReplayEvents == 0 || p.JournalBytes == 0 {
		t.Fatalf("failover replayed nothing: %+v", p)
	}
	var buf bytes.Buffer
	d.Write(&buf)
	if !strings.Contains(buf.String(), "Failover recovery") {
		t.Fatal("missing table header")
	}
	buf.Reset()
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"recovery_ms\"") {
		t.Fatal("missing JSON field")
	}
}
