package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"acep/internal/chaos"
	"acep/internal/cluster"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/ha"
	"acep/internal/lease"
	"acep/internal/pattern"
	"acep/internal/shard"
)

// ChaosIDs lists the partition-tolerance experiments.
func ChaosIDs() []string { return []string{"chaos-traffic", "chaos-stocks"} }

// chaosSeed makes the injected fault stream reproducible run to run.
const chaosSeed = 0xace9

// ChaosData is the partition-tolerance experiment of the HA layer: the
// identical keyed workload runs through a replicated loopback-TCP pair
// twice under deterministic fault injection (internal/chaos). The
// faulty-link run duplicates and delays replication frames the whole
// way — the cut-ordinal protocol must absorb every fault with zero
// effect on the delivered stream. The partition run silently blackholes
// the replication link mid-stream with a lease arbiter attached: the
// primary must demote (not emit through the partition), the successor
// must win the lease and take over, and the delivered stream must stay
// byte-identical to the single-process engine. Both runs digest-verify
// before reporting; recorded runs accrue in BENCH_chaos.json.
type ChaosData struct {
	Dataset       string `json:"dataset"`
	Events        int    `json:"events"`
	Keys          int    `json:"keys"`
	Nodes         int    `json:"nodes"`
	ShardsPerNode int    `json:"shards_per_node"`
	Batch         int    `json:"batch"`
	Cores         int    `json:"cores"`
	Transport     string `json:"transport"`
	Seed          uint64 `json:"seed"`

	// Faulty-link run: duplicated and delayed replication frames.
	CleanTP  float64 `json:"clean_events_per_sec"`
	FaultyTP float64 `json:"faulty_events_per_sec"`
	Dups     uint64  `json:"injected_dups"`
	Delays   uint64  `json:"injected_delays"`

	// Partition run: blackhole at PartitionAt, demotion, lease-arbitrated
	// takeover at end of feed.
	PartitionAt    int     `json:"partition_at_event"`
	DemoteMS       float64 `json:"demote_ms"`         // partition -> gate frozen
	TakeoverMS     float64 `json:"takeover_pause_ms"` // detection -> resumed
	RecoveryMS     float64 `json:"recovery_ms"`       // partition -> resumed
	CommittedCount uint64  `json:"lease_committed_matches"`
	Skipped        uint64  `json:"skipped_matches"`
	Matches        uint64  `json:"matches"`
}

// Chaos measures the HA layer's behavior under injected faults on the
// keyed dataset (size-4 keyed sequence — the HA experiment's setup). A
// match-stream divergence in any run is an error, not a data point.
func (h *Harness) Chaos(dataset string, nodes, shardsPerNode, batch int) (*ChaosData, error) {
	if nodes <= 0 {
		nodes = 3
	}
	if shardsPerNode <= 0 {
		shardsPerNode = 2
	}
	if batch <= 0 {
		batch = 256
	}
	w := h.KeyedWorkload(dataset)
	pat, err := w.Pattern(gen.Sequence, 4, h.Scale.Window*16)
	if err != nil {
		return nil, err
	}
	total := nodes * shardsPerNode
	cfg := engine.Config{CheckEvery: h.Scale.CheckEvery}
	data := &ChaosData{
		Dataset: dataset, Events: len(w.Events), Keys: w.Keys,
		Nodes: nodes, ShardsPerNode: shardsPerNode, Batch: batch,
		Cores: runtime.NumCPU(), Transport: "loopback-tcp",
		Seed: chaosSeed,
	}

	// Single-process reference digest at the same total shard count.
	var ref matchDigest
	refEng, err := shard.New(pat, cfg, shard.Options{
		Shards: total, Batch: batch, KeyAttr: "key", Schema: w.Schema,
		OnMatch: ref.add,
	})
	if err != nil {
		return nil, err
	}
	for i := range w.Events {
		refEng.Process(&w.Events[i])
	}
	refEng.Finish()
	verify := func(mode string, d matchDigest) error {
		if d.n != ref.n || d.h != ref.h {
			return fmt.Errorf("bench: chaos %s %s delivered %d matches (digest %x), reference %d (digest %x) — fault injection changed the match stream",
				dataset, mode, d.n, d.h, ref.n, ref.h)
		}
		return nil
	}

	// Clean replicated baseline, then the same pair with a faulty link.
	if data.CleanTP, err = h.chaosFaultyRun(w, pat, cfg, nodes, shardsPerNode, batch, data, false, verify); err != nil {
		return nil, err
	}
	if data.FaultyTP, err = h.chaosFaultyRun(w, pat, cfg, nodes, shardsPerNode, batch, data, true, verify); err != nil {
		return nil, err
	}
	if err := h.chaosPartitionRun(w, pat, cfg, nodes, shardsPerNode, batch, data, verify); err != nil {
		return nil, err
	}
	return data, nil
}

// chaosFaultyRun feeds the whole stream through a replicated pair whose
// replication link duplicates and delays frames (faulty true) or is
// clean (faulty false), and verifies byte-identity either way.
func (h *Harness) chaosFaultyRun(w *gen.Workload, pat *pattern.Pattern, cfg engine.Config,
	nodes, shardsPerNode, batch int, data *ChaosData, faulty bool,
	verify func(string, matchDigest) error) (float64, error) {
	addrs, closeAll, err := haStartNodes(w, pat, cfg, nodes, shardsPerNode, batch)
	if err != nil {
		return 0, err
	}
	defer closeAll()
	var digest matchDigest
	var wrap *chaos.Wrapper
	hcfg := ha.Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: batch,
		Workers:  addrs,
		OnTagged: func(t shard.Tagged) { digest.add(t.M) },
	}
	mode := "clean"
	if faulty {
		mode = "faulty-link"
		hcfg.WrapRepl = func(c cluster.Conn) cluster.Conn {
			wrap = chaos.Wrap(c, chaos.Config{
				Seed: chaosSeed, DupProb: 0.05,
				DelayProb: 0.10, MaxDelay: 2 * time.Millisecond,
			})
			return wrap
		}
	}
	p, err := ha.New(hcfg)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := range w.Events {
		p.Process(&w.Events[i])
	}
	if err := p.Finish(); err != nil {
		return 0, fmt.Errorf("bench: chaos %s finish: %w", mode, err)
	}
	if deg, cause := p.Degraded(); deg {
		return 0, fmt.Errorf("bench: chaos %s run degraded: %s", mode, cause)
	}
	tp := float64(len(w.Events)) / time.Since(start).Seconds()
	if wrap != nil {
		st := wrap.Stats()
		data.Dups, data.Delays = st.Dups, st.Delays
	}
	return tp, verify(mode, digest)
}

// chaosPartitionRun is the split-brain drill: a lease-arbitrated pair
// whose replication link is silently blackholed ~40% into the stream.
// The primary demotes once its acknowledgement window times out, the
// feed continues (frozen), and at end of feed the standby takes over
// through the lease and delivers the rest — byte-identically.
func (h *Harness) chaosPartitionRun(w *gen.Workload, pat *pattern.Pattern, cfg engine.Config,
	nodes, shardsPerNode, batch int, data *ChaosData,
	verify func(string, matchDigest) error) error {
	addrs, closeAll, err := haStartNodes(w, pat, cfg, nodes, shardsPerNode, batch)
	if err != nil {
		return err
	}
	defer closeAll()
	arb := lease.New()
	arbAddr, err := arb.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer arb.Close()
	var digest matchDigest
	var wrap *chaos.Wrapper
	p, err := ha.New(ha.Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: batch,
		Workers:   addrs,
		OnTagged:  func(t shard.Tagged) { digest.add(t.M) },
		LeaseAddr: arbAddr, LeaseTTL: 300 * time.Millisecond,
		ReplTimeout: 400 * time.Millisecond,
		WrapRepl: func(c cluster.Conn) cluster.Conn {
			wrap = chaos.Wrap(c, chaos.Config{Seed: chaosSeed})
			return wrap
		},
	})
	if err != nil {
		return err
	}
	partitionAt := len(w.Events) * 2 / 5
	data.PartitionAt = partitionAt
	var partitioned time.Time
	for i := range w.Events {
		if i == partitionAt {
			partitioned = time.Now()
			wrap.Partition()
		}
		p.Process(&w.Events[i])
	}
	d := p.Demotion()
	if d == nil {
		return fmt.Errorf("bench: chaos partition: primary never demoted through the blackhole")
	}
	data.DemoteMS = float64(d.At.Sub(partitioned).Microseconds()) / 1000
	data.CommittedCount = d.Count
	if err := p.KillPrimary(); err != nil {
		return fmt.Errorf("bench: chaos takeover: %w", err)
	}
	if err := p.Finish(); err != nil {
		return fmt.Errorf("bench: chaos partition finish: %w", err)
	}
	tk := p.Takeover()
	if tk == nil {
		return fmt.Errorf("bench: chaos partition: no takeover recorded")
	}
	data.TakeoverMS = float64(tk.Pause().Microseconds()) / 1000
	data.RecoveryMS = float64(tk.ResumedAt.Sub(partitioned).Microseconds()) / 1000
	data.Skipped = tk.Skipped
	data.Matches = p.Delivered()
	return verify("partition", digest)
}

// Write prints the partition-tolerance table.
func (d *ChaosData) Write(w io.Writer) {
	fmt.Fprintf(w, "Partition tolerance — %s workload, %d events, %d keys, %d nodes x %d shards, batch %d, %s, %d cores, seed %#x\n",
		d.Dataset, d.Events, d.Keys, d.Nodes, d.ShardsPerNode, d.Batch, d.Transport, d.Cores, d.Seed)
	fmt.Fprintf(w, "%-14s%14s\n", "link", "events/s")
	fmt.Fprintf(w, "%-14s%14.0f\n", "clean", d.CleanTP)
	fmt.Fprintf(w, "%-14s%14.0f  (%d dup, %d delayed frames absorbed)\n", "faulty", d.FaultyTP, d.Dups, d.Delays)
	fmt.Fprintf(w, "partition at event %d: demoted in %.1f ms (committed %d matches), takeover pause %.1f ms, partition-to-resume %.1f ms, skipped %d regenerated, %d matches\n",
		d.PartitionAt, d.DemoteMS, d.CommittedCount, d.TakeoverMS, d.RecoveryMS, d.Skipped, d.Matches)
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON
// object per invocation).
func (d *ChaosData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
