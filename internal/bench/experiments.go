package bench

import (
	"fmt"

	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/planner"
	"acep/internal/stats"
)

// DefaultDGrid is the invariant-distance sweep of Figure 5.
func DefaultDGrid() []float64 { return []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5} }

// DefaultTGrid is the threshold sweep used to find t_opt for the
// constant-threshold baseline (the paper found t_opt empirically with "a
// similar series of runs").
func DefaultTGrid() []float64 { return []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.8} }

// Fig5Data holds throughput of the invariant method as a function of
// pattern size and distance d for one combo (paper Figure 5).
type Fig5Data struct {
	Combo      Combo
	Ds         []float64
	Sizes      []int
	Throughput [][]float64 // [dIdx][sizeIdx]
}

// Fig5 measures the invariant method on sequence patterns over the d
// sweep.
func (h *Harness) Fig5(c Combo, ds []float64) (*Fig5Data, error) {
	data := &Fig5Data{Combo: c, Ds: ds, Sizes: h.Scale.Sizes}
	for _, d := range ds {
		row := make([]float64, 0, len(h.Scale.Sizes))
		for _, size := range h.Scale.Sizes {
			pat, err := h.Pattern(c, gen.Sequence, size)
			if err != nil {
				return nil, err
			}
			d := d
			res, err := h.RunBest(c, pat, func() core.Policy { return &core.Invariant{D: d} }, 3)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Throughput)
		}
		data.Throughput = append(data.Throughput, row)
	}
	return data, nil
}

// BestD returns the d with the highest geometric-mean throughput across
// sizes: the combo's d_opt.
func (d *Fig5Data) BestD() float64 {
	best, bestScore := d.Ds[0], -1.0
	for i, dv := range d.Ds {
		score := 1.0
		for _, tp := range d.Throughput[i] {
			score *= tp
		}
		if score > bestScore {
			best, bestScore = dv, score
		}
	}
	return best
}

// Table1Row is one row of Table 1: the quality of the average-relative-
// difference estimate d_avg against the empirically optimal d_opt.
type Table1Row struct {
	Combo   Combo
	Size    int
	DAvg    float64
	DOpt    float64
	Quality float64 // min(davg/dopt, dopt/davg)
}

// Table1 computes d_avg for each pattern size by monitoring the initial
// execution of the plan generation algorithm on statistics estimated from
// a warmup prefix of the stream (§3.4), and compares it with d_opt taken
// from the Figure 5 sweep.
func (h *Harness) Table1(c Combo, f5 *Fig5Data) ([]Table1Row, error) {
	dopt := f5.BestD()
	var rows []Table1Row
	for _, size := range h.Scale.Sizes {
		if size < 4 {
			continue // the paper reports sizes 4..8
		}
		pat, err := h.Pattern(c, gen.Sequence, size)
		if err != nil {
			return nil, err
		}
		w := h.Workload(c.Dataset)
		est, err := stats.NewEstimator(pat, stats.Config{})
		if err != nil {
			return nil, err
		}
		warm := len(w.Events) / 10
		if warm < 1000 {
			warm = len(w.Events) / 2
		}
		for i := 0; i < warm; i++ {
			est.Observe(&w.Events[i])
		}
		snap := est.Snapshot(w.Events[warm-1].TS)
		alg := algorithmFor(c)
		res := alg.Generate(pat, snap)
		davg := res.Trace.AvgRelDiffTightest(snap)
		q := 0.0
		if davg > 0 && dopt > 0 {
			q = davg / dopt
			if q > 1 {
				q = 1 / q
			}
		}
		rows = append(rows, Table1Row{Combo: c, Size: size, DAvg: davg, DOpt: dopt, Quality: q})
	}
	return rows, nil
}

// MethodsData holds the four-panel comparison of adaptation methods for
// one combo (Figures 6-9 averaged over pattern sets; Figures 10-29 are
// the per-set views).
type MethodsData struct {
	Combo   Combo
	Kinds   []gen.Kind
	Sizes   []int
	Methods []string
	TOpt    float64
	DOpt    float64
	// Results[kindIdx][sizeIdx][methodIdx]
	Results [][][]Result
}

// MethodNames lists the compared adaptation methods in display order.
func MethodNames() []string {
	return []string{"static", "unconditional", "threshold", "invariant"}
}

// policyFactory returns the policy constructor for a method name.
func policyFactory(method string, topt, dopt float64) func() core.Policy {
	switch method {
	case "static":
		return func() core.Policy { return core.Static{} }
	case "unconditional":
		return func() core.Policy { return core.Unconditional{} }
	case "threshold":
		return func() core.Policy { return &core.Threshold{T: topt} }
	case "invariant":
		return func() core.Policy { return &core.Invariant{D: dopt} }
	default:
		panic("bench: unknown method " + method)
	}
}

// ScanThreshold finds t_opt for the combo by measuring the threshold
// method on a size-5 sequence pattern over the candidate grid.
func (h *Harness) ScanThreshold(c Combo, grid []float64) (float64, error) {
	pat, err := h.Pattern(c, gen.Sequence, 5)
	if err != nil {
		return 0, err
	}
	best, bestTp := grid[0], -1.0
	for _, t := range grid {
		t := t
		res, err := h.RunBest(c, pat, func() core.Policy { return &core.Threshold{T: t} }, 3)
		if err != nil {
			return 0, err
		}
		if res.Throughput > bestTp {
			best, bestTp = t, res.Throughput
		}
	}
	return best, nil
}

// Methods runs the full adaptation-method comparison for one combo.
func (h *Harness) Methods(c Combo, kinds []gen.Kind, topt, dopt float64) (*MethodsData, error) {
	data := &MethodsData{
		Combo:   c,
		Kinds:   kinds,
		Sizes:   h.Scale.Sizes,
		Methods: MethodNames(),
		TOpt:    topt,
		DOpt:    dopt,
	}
	for _, kind := range kinds {
		perKind := make([][]Result, 0, len(h.Scale.Sizes))
		for _, size := range h.Scale.Sizes {
			pat, err := h.Pattern(c, kind, size)
			if err != nil {
				return nil, err
			}
			perSize := make([]Result, 0, len(data.Methods))
			for _, method := range data.Methods {
				res, err := h.Run(c, pat, policyFactory(method, topt, dopt))
				if err != nil {
					return nil, err
				}
				perSize = append(perSize, res)
			}
			perKind = append(perKind, perSize)
		}
		data.Results = append(data.Results, perKind)
	}
	return data, nil
}

// Avg averages the results over the pattern kinds: Figures 6-9 report
// "averaged over all pattern sets". Throughputs, reoptimization counts
// and overheads are arithmetic means.
func (m *MethodsData) Avg() [][]Result {
	out := make([][]Result, len(m.Sizes))
	for si := range m.Sizes {
		out[si] = make([]Result, len(m.Methods))
		for mi := range m.Methods {
			var acc Result
			for ki := range m.Kinds {
				r := m.Results[ki][si][mi]
				acc.Throughput += r.Throughput
				acc.Matches += r.Matches
				acc.Reopts += r.Reopts
				acc.Overhead += r.Overhead
				acc.PMCreated += r.PMCreated
				acc.Elapsed += r.Elapsed
			}
			n := float64(len(m.Kinds))
			acc.Throughput /= n
			acc.Overhead /= n
			acc.Reopts = uint64(float64(acc.Reopts)/n + 0.5)
			out[si][mi] = acc
		}
	}
	return out
}

// algorithmFor maps the combo to its plan generation algorithm.
func algorithmFor(c Combo) planner.Algorithm {
	if c.Model == engine.ZStreamTree {
		return planner.ZStream{}
	}
	return planner.Greedy{}
}

var _ = fmt.Sprintf
