package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"acep/internal/cluster"
	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/pattern"
	recovery "acep/internal/recover"
	"acep/internal/shard"
	"acep/internal/stats"
	"acep/internal/wire"
)

// FailoverIDs lists the fault-tolerance experiments.
func FailoverIDs() []string { return []string{"failover-traffic", "failover-stocks"} }

// FailoverSweep is one measured configuration of the failover
// experiment.
type FailoverSweep struct {
	Nodes        int
	SlackWindows int
}

// DefaultFailoverSweeps crosses the node counts of the acceptance
// criterion (3–5) with journal retention horizons (1, 2 and 4 pattern
// windows) at the 3-node point, so both axes of the recovery cost —
// cluster width and journal size — are visible.
func DefaultFailoverSweeps() []FailoverSweep {
	return []FailoverSweep{
		{Nodes: 3, SlackWindows: 1},
		{Nodes: 3, SlackWindows: 2},
		{Nodes: 3, SlackWindows: 4},
		{Nodes: 4, SlackWindows: 2},
		{Nodes: 5, SlackWindows: 2},
	}
}

// killConn severs the victim's link after a fixed number of successful
// ingress sends, deterministically landing the failure mid-stream.
type killConn struct {
	cluster.Conn
	budget int
}

func (k *killConn) Send(f wire.Frame) error {
	if k.budget <= 0 {
		k.Conn.Close()
		return fmt.Errorf("bench: injected link death")
	}
	k.budget--
	return k.Conn.Send(f)
}

// FailoverPoint is one measured sweep entry: the healthy cluster's
// throughput, the killed run's throughput (same cluster, one node lost
// and recovered mid-stream), the recovery time, and the journal/replay
// volumes that bought it.
type FailoverPoint struct {
	Nodes        int     `json:"nodes"`
	TotalShards  int     `json:"total_shards"`
	SlackWindows int     `json:"slack_windows"`
	HealthyTP    float64 `json:"healthy_events_per_sec"`
	FailoverTP   float64 `json:"failover_events_per_sec"`
	Dip          float64 `json:"throughput_dip"` // 1 - failover/healthy
	RecoveryMS   float64 `json:"recovery_ms"`    // detection -> RecoveryDone
	JournalBytes int64   `json:"journal_bytes"`  // at failover time
	JournalCuts  int     `json:"journal_cuts"`
	ReplayCuts   int     `json:"replay_cuts"`
	ReplayEvents int     `json:"replay_events"`
	Matches      uint64  `json:"matches"`
}

// FailoverData is the recovery experiment of the fault-tolerance layer:
// for each sweep point it runs the identical keyed workload through a
// loopback-TCP cluster twice — once healthy, once with one node's link
// severed ~40% into the stream and failed over to a bare standby — and
// verifies both deliver the single-process sharded engine's exact match
// stream before reporting. Recorded runs accrue in BENCH_failover.json.
type FailoverData struct {
	Dataset       string          `json:"dataset"`
	Events        int             `json:"events"`
	Keys          int             `json:"keys"`
	ShardsPerNode int             `json:"shards_per_node"`
	Batch         int             `json:"batch"`
	Cores         int             `json:"cores"`
	Transport     string          `json:"transport"`
	Points        []FailoverPoint `json:"points"`
}

// Failover measures recovery time and throughput dip across the sweep
// on the keyed dataset (size-4 keyed sequence pattern, per-shard
// invariant policy — the Cluster experiment's setup). A match-stream
// divergence in either run is an error, not a data point.
func (h *Harness) Failover(dataset string, sweeps []FailoverSweep, shardsPerNode, batch int) (*FailoverData, error) {
	if len(sweeps) == 0 {
		sweeps = DefaultFailoverSweeps()
	}
	if shardsPerNode <= 0 {
		shardsPerNode = 2
	}
	effBatch := batch
	if effBatch <= 0 {
		effBatch = 256
	}
	w := h.KeyedWorkload(dataset)
	pat, err := w.Pattern(gen.Sequence, 4, h.Scale.Window*16)
	if err != nil {
		return nil, err
	}
	data := &FailoverData{
		Dataset:       dataset,
		Events:        len(w.Events),
		Keys:          w.Keys,
		ShardsPerNode: shardsPerNode,
		Batch:         batch,
		Cores:         runtime.NumCPU(),
		Transport:     "loopback-tcp",
	}
	initial := stats.Exact(pat, w.Events[:len(w.Events)/20+1])
	cfg := func() engine.Config {
		return engine.Config{
			CheckEvery:   h.Scale.CheckEvery,
			NewPolicy:    func() core.Policy { return &core.Invariant{} },
			InitialStats: func(*pattern.Pattern) *stats.Snapshot { return initial },
		}
	}

	for _, sw := range sweeps {
		total := sw.Nodes * shardsPerNode

		// Single-process reference digest at the same total shard count.
		var ref matchDigest
		refEng, err := shard.New(pat, cfg(), shard.Options{
			Shards: total, Batch: batch, KeyAttr: "key", Schema: w.Schema,
			OnMatch: ref.add,
		})
		if err != nil {
			return nil, err
		}
		for i := range w.Events {
			refEng.Process(&w.Events[i])
		}
		refEng.Finish()

		// The link dies after the assign frame plus ~40% of the cuts.
		killBudget := 1 + (len(w.Events)/effBatch)*2/5
		p := FailoverPoint{Nodes: sw.Nodes, TotalShards: total, SlackWindows: sw.SlackWindows}
		for _, killed := range []bool{false, true} {
			tp, fos, digest, err := h.failoverRun(w, pat, cfg, sw, shardsPerNode, batch, killed, killBudget)
			if err != nil {
				return nil, err
			}
			if digest.n != ref.n || digest.h != ref.h {
				return nil, fmt.Errorf("bench: failover %s nodes=%d slack=%d killed=%v delivered %d matches (digest %x), reference %d (digest %x) — recovery changed the match stream",
					dataset, sw.Nodes, sw.SlackWindows, killed, digest.n, digest.h, ref.n, ref.h)
			}
			if killed {
				if len(fos) != 1 {
					return nil, fmt.Errorf("bench: failover %s nodes=%d slack=%d: %d failovers, want 1", dataset, sw.Nodes, sw.SlackWindows, len(fos))
				}
				fo := fos[0]
				p.FailoverTP = tp
				p.RecoveryMS = float64(fo.RecoveryTime().Microseconds()) / 1000
				p.JournalBytes, p.JournalCuts = fo.JournalBytes, fo.JournalCuts
				p.ReplayCuts, p.ReplayEvents = fo.ReplayCuts, fo.ReplayEvents
				p.Matches = digest.n
			} else {
				if len(fos) != 0 {
					return nil, fmt.Errorf("bench: healthy run failed over: %+v", fos)
				}
				p.HealthyTP = tp
			}
		}
		p.Dip = 1 - p.FailoverTP/p.HealthyTP
		data.Points = append(data.Points, p)
	}
	return data, nil
}

// failoverRun executes one cluster pass: sw.Nodes TCP workers plus one
// bare TCP standby, recovery armed, optionally severing node 1's link
// after killBudget sends.
func (h *Harness) failoverRun(w *gen.Workload, pat *pattern.Pattern, cfg func() engine.Config,
	sw FailoverSweep, shardsPerNode, batch int, kill bool, killBudget int) (float64, []recovery.Failover, matchDigest, error) {
	var digest matchDigest
	fail := func(err error) (float64, []recovery.Failover, matchDigest, error) {
		return 0, nil, digest, err
	}
	startNode := func(bare bool) (*cluster.Listener, error) {
		nc := cluster.NodeConfig{
			Engine: cfg(), Shards: shardsPerNode, Batch: batch, KeyAttr: "key",
		}
		if !bare {
			nc.Pattern, nc.Schema = pat, w.Schema
		}
		node, err := cluster.NewNode(nc)
		if err != nil {
			return nil, err
		}
		l, err := cluster.ListenTCP("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go node.ServeListener(l, nil) //nolint:errcheck // closed below; killed sessions error by design
		return l, nil
	}

	conns := make([]cluster.Conn, sw.Nodes)
	var listeners []*cluster.Listener
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < sw.Nodes; i++ {
		l, err := startNode(false)
		if err != nil {
			return fail(err)
		}
		listeners = append(listeners, l)
		c, err := cluster.DialTCP(l.Addr())
		if err != nil {
			return fail(err)
		}
		if kill && i == 1 {
			c = &killConn{Conn: c, budget: killBudget}
		}
		conns[i] = c
	}
	standby, err := startNode(true)
	if err != nil {
		return fail(err)
	}
	listeners = append(listeners, standby)

	dialed := false
	ing, err := cluster.NewIngress(pat, conns, cluster.IngressOptions{
		Batch: batch, KeyAttr: "key", Schema: w.Schema,
		OnMatch: digest.add,
		Recovery: &cluster.RecoveryConfig{
			SlackWindows: sw.SlackWindows,
			Standby: func() (cluster.Conn, error) {
				if dialed {
					return nil, fmt.Errorf("bench: single standby already used")
				}
				dialed = true
				return cluster.DialTCP(standby.Addr())
			},
		},
	})
	if err != nil {
		return fail(err)
	}
	start := time.Now()
	for i := range w.Events {
		ing.Process(&w.Events[i])
	}
	if err := ing.Finish(); err != nil {
		return fail(fmt.Errorf("bench: failover run finish: %w", err))
	}
	tp := float64(len(w.Events)) / time.Since(start).Seconds()
	return tp, ing.Failovers(), digest, nil
}

// Write prints the failover table.
func (d *FailoverData) Write(w io.Writer) {
	fmt.Fprintf(w, "Failover recovery — %s workload, %d events, %d keys, %d shards/node, %s, %d cores\n",
		d.Dataset, d.Events, d.Keys, d.ShardsPerNode, d.Transport, d.Cores)
	fmt.Fprintf(w, "%-7s%7s%14s%14s%8s%12s%12s%10s%10s\n",
		"nodes", "slack", "healthy e/s", "killed e/s", "dip", "recover ms", "journal B", "cuts", "replayed")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-7d%7d%14.0f%14.0f%7.1f%%%12.1f%12d%10d%10d\n",
			p.Nodes, p.SlackWindows, p.HealthyTP, p.FailoverTP, 100*p.Dip,
			p.RecoveryMS, p.JournalBytes, p.JournalCuts, p.ReplayEvents)
	}
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON
// object per invocation).
func (d *FailoverData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
