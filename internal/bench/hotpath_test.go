package bench

import (
	"testing"

	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/stats"
)

// TestHotpathSmall runs the hot-path experiment end to end at a small
// scale: every cell is oracle-verified inside Hotpath, and the two
// models must agree on the full measured stream, so a pass here is a
// real correctness statement about the optimized engines.
func TestHotpathSmall(t *testing.T) {
	h := NewHarness(Scale{
		Events: 6000, Sizes: []int{3, 4}, Seed: 1, Window: 150,
		CheckEvery: 500, Types: 10,
	})
	d, err := h.Hotpath("traffic", "test")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(HotpathKinds()) * 2; len(d.Points) != want {
		t.Fatalf("got %d points, want %d", len(d.Points), want)
	}
	for _, p := range d.Points {
		if p.Throughput <= 0 {
			t.Fatalf("%s/%s: non-positive throughput", p.Kind, p.Model)
		}
	}
}

// BenchmarkHotpathNFA and BenchmarkHotpathTree time one full pass of the
// stocks workload (the dense one) through a raw static-plan engine —
// the cell the hotpath-* experiments measure. The CI bench smoke runs
// these with -benchtime=10x so the harness cannot rot.
func BenchmarkHotpathNFA(b *testing.B)  { benchmarkHotpath(b, engine.GreedyNFA) }
func BenchmarkHotpathTree(b *testing.B) { benchmarkHotpath(b, engine.ZStreamTree) }

func benchmarkHotpath(b *testing.B, model engine.Model) {
	h := NewHarness(Scale{
		Events: 20000, Sizes: []int{4}, Seed: 1, Window: 150,
		CheckEvery: 500, Types: 10,
	})
	w := h.Workload("stocks")
	pat, err := w.Pattern(gen.Sequence, 4, h.Scale.Window)
	if err != nil {
		b.Fatal(err)
	}
	snap := stats.Exact(pat, w.Events[:len(w.Events)/20+1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var matches uint64
		eng, err := newStaticEval(pat, model, snap, true, func(*match.Match) { matches++ })
		if err != nil {
			b.Fatal(err)
		}
		for j := range w.Events {
			eng.Process(&w.Events[j])
		}
		eng.Finish()
		if matches == 0 {
			b.Fatal("no matches; the measured path is vacuous")
		}
	}
	b.SetBytes(int64(len(w.Events))) // events/sec shows as MB/s × 1e6
}
