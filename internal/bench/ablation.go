package bench

import (
	"fmt"
	"io"

	"acep/internal/core"
	"acep/internal/gen"
)

// AblationK measures the K-invariant method (§3.3) across K values: more
// invariants per building block trade verification work for fewer false
// negatives (missed reoptimization opportunities that later surface as
// corrective replans).
type AblationKRow struct {
	K          int
	Throughput float64
	Reopts     uint64
	Overhead   float64
}

// AblationK sweeps K on a sequence pattern of the given size.
func (h *Harness) AblationK(c Combo, size int, ks []int, d float64) ([]AblationKRow, error) {
	pat, err := h.Pattern(c, gen.Sequence, size)
	if err != nil {
		return nil, err
	}
	var rows []AblationKRow
	for _, k := range ks {
		k := k
		res, err := h.RunBest(c, pat, func() core.Policy { return &core.Invariant{K: k, D: d} }, 2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationKRow{K: k, Throughput: res.Throughput, Reopts: res.Reopts, Overhead: res.Overhead})
	}
	return rows, nil
}

// WriteAblationK prints the K sweep.
func WriteAblationK(w io.Writer, c Combo, size int, rows []AblationKRow) {
	fmt.Fprintf(w, "Ablation — K-invariant method (§3.3) on %s, sequence size %d\n", c, size)
	fmt.Fprintf(w, "%-6s%14s%10s%12s\n", "K", "events/sec", "replans", "overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d%14.0f%10d%11.2f%%\n", r.K, r.Throughput, r.Reopts, r.Overhead*100)
	}
}

// AblationSelectorRow compares invariant-selection strategies (§3.5).
type AblationSelectorRow struct {
	Name       string
	Throughput float64
	Reopts     uint64
}

// AblationSelector compares the tightest-absolute-gap heuristic (§3.1)
// with the relative-gap variant and with monitoring the full DCS
// (Theorem 2's decision function).
func (h *Harness) AblationSelector(c Combo, size int, d float64) ([]AblationSelectorRow, error) {
	pat, err := h.Pattern(c, gen.Sequence, size)
	if err != nil {
		return nil, err
	}
	selectors := []struct {
		name string
		sel  core.Selector
	}{
		{"tightest-gap", core.TightestGap},
		{"tightest-relgap", core.TightestRelGap},
		{"full-dcs", core.All},
	}
	var rows []AblationSelectorRow
	for _, s := range selectors {
		s := s
		res, err := h.RunBest(c, pat, func() core.Policy {
			return &core.Invariant{D: d, Select: s.sel}
		}, 2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationSelectorRow{Name: s.name, Throughput: res.Throughput, Reopts: res.Reopts})
	}
	return rows, nil
}

// WriteAblationSelector prints the selector comparison.
func WriteAblationSelector(w io.Writer, c Combo, size int, rows []AblationSelectorRow) {
	fmt.Fprintf(w, "Ablation — invariant selection strategy (§3.5) on %s, sequence size %d\n", c, size)
	fmt.Fprintf(w, "%-18s%14s%10s\n", "selector", "events/sec", "replans")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s%14.0f%10d\n", r.Name, r.Throughput, r.Reopts)
	}
}
