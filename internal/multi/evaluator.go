package multi

import (
	"fmt"
	"math"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/nfa"
	"acep/internal/pattern"
	"acep/internal/plan"
	"acep/internal/shed"
)

// Options assembles an Evaluator.
type Options struct {
	// OnMatch receives every match, tagged with the emitting pattern's
	// id. Required.
	OnMatch func(id uint32, m *match.Match)
	// OwnedEmit runs the per-pattern engines under the owned-emit
	// contract: OnMatch receives a scratch match valid only for the
	// duration of the call (encode or copy inside).
	OwnedEmit bool
	// StableInput declares that every event pointer handed to Process
	// stays valid for the longest pattern's retention horizon (arena
	// ingest, see engine.Config.ExternalEvents). Without it the
	// evaluator interns each event once into its own arena — still one
	// copy for the whole set instead of one per pattern.
	StableInput bool
	// Budgets installs per-tenant token buckets; tenants absent from
	// the map are unbudgeted. See shed.TenantGate.
	Budgets map[uint32]shed.TenantBudget
}

// PatternMetrics is one pattern's engine counters, tagged for the wire.
type PatternMetrics struct {
	ID     uint32
	Tenant uint32
	M      engine.Metrics
}

// sink is one registered pattern's evaluation state: either a full
// adaptive engine (independent patterns) or a fixed-plan NFA resuming
// from shared-prefix seeds (group members).
type sink struct {
	spec   Spec
	eng    *engine.Engine // independent path
	seeded *nfa.Engine    // shared-prefix path
	recipe [][]posRecipe  // per event type: mask composition, nil if unscannable
	tslot  int            // tenant slot index

	arrived uint64 // events offered, pre-gate
	gated   uint64 // events shed by the tenant gate
	late    uint64 // out-of-order events dropped at the evaluator
	events  uint64 // events reaching the seeded NFA (independent path counts its own)
}

// posRecipe composes one position's mask bit from global verdicts.
type posRecipe struct {
	bit   uint32
	preds []int
}

// runnerState is one shared-prefix runner and its subscribers.
type runnerState struct {
	eng    *nfa.Engine
	recipe [][]posRecipe
	subs   []*sink
	tenant uint32
	tslot  int
	group  PrefixGroup
}

// Evaluator drives a pattern set over one event stream, evaluating
// shared work once. Not safe for concurrent use; the shard layer runs
// one evaluator per worker.
type Evaluator struct {
	opt    Options
	schema *event.Schema

	sinks   []*sink
	byID    map[uint32]*sink
	runners []*runnerState

	// Shared unary verdict table: one entry per distinct predicate,
	// memoized per event via epoch stamps.
	preds   []globalPred
	predID  map[predKey]int
	verdict []bool
	stamp   []uint64
	epoch   uint64

	// Tenant gating: slot-indexed per-event admission memo.
	gate     *shed.TenantGate
	tenants  []uint32
	tslotOf  map[uint32]int
	admit    []bool
	maxTypes int

	arena     *match.Arena // nil with StableInput
	maxWindow event.Time
	watermark event.Time
	started   bool
	sinceRel  int
	predEvals uint64 // shared-table evaluations (for diagnostics)
}

// NewEvaluator builds the evaluation state for an analyzed set.
func NewEvaluator(set *Set, opt Options) (*Evaluator, error) {
	if opt.OnMatch == nil {
		return nil, fmt.Errorf("multi: Options.OnMatch is required")
	}
	v := &Evaluator{
		opt:     opt,
		schema:  set.schema,
		byID:    make(map[uint32]*sink),
		preds:   append([]globalPred(nil), set.preds...),
		predID:  make(map[predKey]int, len(set.predID)),
		gate:    shed.NewTenantGate(opt.Budgets),
		tslotOf: make(map[uint32]int),
	}
	for k, id := range set.predID {
		v.predID[k] = id
	}
	v.verdict = make([]bool, len(v.preds))
	v.stamp = make([]uint64, len(v.preds))
	if !opt.StableInput {
		v.arena = &match.Arena{}
	}

	for gi := range set.Groups {
		g := set.Groups[gi]
		r := &runnerState{tenant: g.Tenant, tslot: v.tenantSlot(g.Tenant), group: g}
		// The emit closure reads r.subs at call time, so runtime
		// subscribe/unsubscribe takes effect without rebinding.
		run := nfa.New(g.Prefix, plan.NewOrderPlan(g.Prefix.Core()), func(m *match.Match) {
			for _, s := range r.subs {
				s.seeded.Seed(m.Events)
			}
		})
		run.SetExternal(true)
		run.SetOwnedEmit(true)
		r.eng = run
		r.recipe = v.buildRecipe(g.Prefix)
		v.runners = append(v.runners, r)
	}
	for i := range set.Specs {
		s, err := v.buildSink(set.Specs[i], set.GroupOf(i))
		if err != nil {
			return nil, err
		}
		v.sinks = append(v.sinks, s)
		v.byID[s.spec.ID] = s
	}
	return v, nil
}

func (v *Evaluator) buildSink(sp Spec, group int) (*sink, error) {
	if _, dup := v.byID[sp.ID]; dup {
		return nil, fmt.Errorf("multi: duplicate pattern id %d", sp.ID)
	}
	s := &sink{spec: sp, tslot: v.tenantSlot(sp.Tenant)}
	s.recipe = v.buildRecipe(sp.Pattern)
	v.growTypes(sp.Pattern)
	if group >= 0 {
		r := v.runners[group]
		e := nfa.New(sp.Pattern, plan.NewOrderPlan(sp.Pattern.Core()), func(m *match.Match) {
			v.opt.OnMatch(sp.ID, m)
		})
		if err := e.SetSharedPrefix(r.group.Len); err != nil {
			return nil, err
		}
		e.SetExternal(true)
		e.SetOwnedEmit(v.opt.OwnedEmit)
		s.seeded = e
		r.subs = append(r.subs, s)
		return s, nil
	}
	cfg := sp.Config
	cfg.OnMatch = func(m *match.Match) { v.opt.OnMatch(sp.ID, m) }
	cfg.ExternalEvents = true
	cfg.OwnedEmit = v.opt.OwnedEmit
	eng, err := engine.New(sp.Pattern, cfg)
	if err != nil {
		return nil, fmt.Errorf("multi: pattern %d: %w", sp.ID, err)
	}
	s.eng = eng
	return s, nil
}

// tenantSlot interns a tenant id into the per-event admission memo.
func (v *Evaluator) tenantSlot(t uint32) int {
	if slot, ok := v.tslotOf[t]; ok {
		return slot
	}
	slot := len(v.tenants)
	v.tenants = append(v.tenants, t)
	v.tslotOf[t] = slot
	v.admit = append(v.admit, true)
	return slot
}

// growTypes tracks the widest type universe and retention horizon.
func (v *Evaluator) growTypes(p *pattern.Pattern) {
	if p.Window > v.maxWindow {
		v.maxWindow = p.Window
	}
	if p.Op == pattern.Or {
		for _, sub := range p.Subs {
			v.growTypes(sub)
		}
		return
	}
	for _, pos := range p.Positions {
		if pos.Type+1 > v.maxTypes {
			v.maxTypes = pos.Type + 1
		}
	}
}

// buildRecipe precomputes, per event type, how to compose the pattern's
// unary position mask from the shared verdict table. Nil for patterns
// the engines cannot consume masks for (OR, 32+ positions).
func (v *Evaluator) buildRecipe(p *pattern.Pattern) [][]posRecipe {
	if p.Op == pattern.Or || !p.MaskScannable() {
		return nil
	}
	maxType := 0
	for _, pos := range p.Positions {
		if pos.Type > maxType {
			maxType = pos.Type
		}
	}
	rec := make([][]posRecipe, maxType+1)
	for t := 0; t <= maxType; t++ {
		for _, pos := range p.PositionsOfType(t) {
			pr := posRecipe{bit: 1 << uint(pos)}
			for _, cu := range p.Unary(pos) {
				pr.preds = append(pr.preds, v.internPred(t, cu))
			}
			rec[t] = append(rec[t], pr)
		}
	}
	return rec
}

func (v *Evaluator) internPred(typ int, cu pattern.CUnary) int {
	k := predKey{typ: typ, attr: cu.Attr, op: cu.Op, c: math.Float64bits(cu.C)}
	if id, ok := v.predID[k]; ok {
		return id
	}
	id := len(v.preds)
	v.preds = append(v.preds, globalPred{typ: typ, cu: cu})
	v.predID[k] = id
	v.verdict = append(v.verdict, false)
	v.stamp = append(v.stamp, 0)
	return id
}

// verdictOf evaluates global predicate id against e at most once per
// event (epoch memo).
func (v *Evaluator) verdictOf(id int, e *event.Event) bool {
	if v.stamp[id] == v.epoch {
		return v.verdict[id]
	}
	v.stamp[id] = v.epoch
	v.predEvals++
	ok := v.preds[id].cu.Ok(e)
	v.verdict[id] = ok
	return ok
}

// maskFor composes the pattern's position mask for e from shared
// verdicts; 0 (not MaskValid) when the pattern has no recipe.
func (v *Evaluator) maskFor(recipe [][]posRecipe, e *event.Event) uint32 {
	t := int(e.Type)
	if recipe == nil || t >= len(recipe) {
		if recipe == nil {
			return 0
		}
		return pattern.MaskValid
	}
	m := pattern.MaskValid
	for i := range recipe[t] {
		pr := &recipe[t][i]
		ok := true
		for _, id := range pr.preds {
			if !v.verdictOf(id, e) {
				ok = false
				break
			}
		}
		if ok {
			m |= pr.bit
		}
	}
	return m
}

// Process feeds one event through the whole set: tenant gates decide
// once per tenant, shared unary verdicts are memoized across patterns,
// prefix runners run first so their seeds reach subscribers before the
// subscribers see the event (the ordering the seeding contract
// requires), then every pattern advances.
func (v *Evaluator) Process(e *event.Event) {
	if v.started && e.TS < v.watermark {
		for _, s := range v.sinks {
			s.arrived++
			s.late++
		}
		return
	}
	v.started = true
	v.watermark = e.TS
	v.epoch++
	if v.arena != nil {
		e = v.intern(e)
	}
	for slot, t := range v.tenants {
		v.admit[slot] = v.gate.Admit(t, e.TS)
	}
	for _, r := range v.runners {
		if v.admit[r.tslot] {
			r.eng.ProcessMasked(e, v.maskFor(r.recipe, e))
		}
	}
	for _, s := range v.sinks {
		s.arrived++
		if !v.admit[s.tslot] {
			s.gated++
			continue
		}
		mask := v.maskFor(s.recipe, e)
		if s.seeded != nil {
			s.events++
			s.seeded.ProcessMasked(e, mask)
		} else {
			s.eng.ProcessMasked(e, mask)
		}
	}
}

// ProcessBatch feeds a batch, equivalent to per-event Process calls.
func (v *Evaluator) ProcessBatch(evs []*event.Event) {
	for _, e := range evs {
		v.Process(e)
	}
}

// intern copies e into the evaluator's arena so every engine can retain
// the pointer, releasing chunks that fell out of every retention window.
func (v *Evaluator) intern(e *event.Event) *event.Event {
	st := v.arena.Intern(e)
	v.sinceRel++
	if v.sinceRel >= 1024 {
		v.sinceRel = 0
		if horizon := v.watermark - 2*v.maxWindow; horizon > 0 {
			v.arena.Release(horizon)
		}
	}
	return st
}

// Finish flushes every pattern at end of stream (runners first — their
// final seeds must land before subscribers flush).
func (v *Evaluator) Finish() {
	for _, r := range v.runners {
		r.eng.Finish()
	}
	for _, s := range v.sinks {
		if s.seeded != nil {
			s.seeded.Finish()
		} else {
			s.eng.Finish()
		}
	}
}

// Add registers a pattern at runtime. It joins the shared unary table
// immediately; prefix groups are not re-analyzed (the pattern evaluates
// independently), so existing patterns' output is undisturbed.
func (v *Evaluator) Add(sp Spec) error {
	s, err := v.buildSink(sp, -1)
	if err != nil {
		return err
	}
	v.sinks = append(v.sinks, s)
	v.byID[sp.ID] = s
	return nil
}

// Remove retires a pattern at runtime. A group member is unsubscribed
// from its runner; the runner keeps serving remaining subscribers (and
// is dropped once the last one leaves).
func (v *Evaluator) Remove(id uint32) error {
	s, ok := v.byID[id]
	if !ok {
		return fmt.Errorf("multi: unknown pattern id %d", id)
	}
	delete(v.byID, id)
	for i, t := range v.sinks {
		if t == s {
			v.sinks = append(v.sinks[:i], v.sinks[i+1:]...)
			break
		}
	}
	if s.seeded == nil {
		return nil
	}
	for _, r := range v.runners {
		for i, sub := range r.subs {
			if sub == s {
				r.subs = append(r.subs[:i], r.subs[i+1:]...)
				break
			}
		}
	}
	for i, r := range v.runners {
		if len(r.subs) == 0 {
			v.runners = append(v.runners[:i], v.runners[i+1:]...)
			break
		}
	}
	return nil
}

// Patterns lists the registered pattern ids in evaluation order.
func (v *Evaluator) Patterns() []uint32 {
	out := make([]uint32, len(v.sinks))
	for i, s := range v.sinks {
		out[i] = s.spec.ID
	}
	return out
}

// SetBudget installs or replaces a tenant budget at runtime.
func (v *Evaluator) SetBudget(tenant uint32, b shed.TenantBudget) {
	v.tenantSlot(tenant)
	v.gate.SetBudget(tenant, b)
}

// TenantStats reports per-tenant admission accounting.
func (v *Evaluator) TenantStats() []shed.TenantStat { return v.gate.Stats() }

// Metrics reports per-pattern engine counters in evaluation order. For
// group members (fixed-plan NFAs) the adaptive-loop counters are zero
// and the evaluation counters are synthesized from nfa.Stats.
func (v *Evaluator) Metrics() []PatternMetrics {
	out := make([]PatternMetrics, 0, len(v.sinks))
	for _, s := range v.sinks {
		var m engine.Metrics
		if s.eng != nil {
			m = s.eng.Metrics()
		} else {
			st := s.seeded.Stats()
			m = engine.Metrics{
				Events:    s.events,
				Matches:   st.Emitted,
				PMCreated: st.PMCreated,
				PredEvals: st.PredEvals,
				PeakPMs:   st.PeakPMs,
			}
		}
		m.EventsArrived = s.arrived
		m.EventsShed += s.gated
		m.LateDropped += s.late
		out = append(out, PatternMetrics{ID: s.spec.ID, Tenant: s.spec.Tenant, M: m})
	}
	return out
}

// LivePMs sums live partial matches across every pattern and runner
// (shedding introspection for the shard layer).
func (v *Evaluator) LivePMs() int {
	n := 0
	for _, r := range v.runners {
		n += r.eng.LivePMs()
	}
	for _, s := range v.sinks {
		if s.seeded != nil {
			n += s.seeded.LivePMs()
		} else {
			n += s.eng.LivePMs()
		}
	}
	return n
}
