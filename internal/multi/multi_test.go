package multi

import (
	"fmt"
	"sort"
	"testing"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/shed"
)

// matchKey renders a match as its constituent sequence numbers — the
// plan-independent identity both evaluation paths must agree on.
func matchKey(m *match.Match) string {
	key := ""
	for _, ev := range m.Events {
		if ev != nil {
			key += fmt.Sprintf("%d,", ev.Seq)
		} else {
			key += "_,"
		}
	}
	for _, set := range m.Kleene {
		key += "["
		for _, ev := range set {
			key += fmt.Sprintf("%d,", ev.Seq)
		}
		key += "]"
	}
	return key
}

type matchSets map[uint32][]string

func (ms matchSets) add(id uint32, m *match.Match) {
	ms[id] = append(ms[id], matchKey(m))
}

func (ms matchSets) sorted() {
	for _, v := range ms {
		sort.Strings(v)
	}
}

func (ms matchSets) equal(t *testing.T, other matchSets, label string) {
	t.Helper()
	ms.sorted()
	other.sorted()
	ids := map[uint32]bool{}
	for id := range ms {
		ids[id] = true
	}
	for id := range other {
		ids[id] = true
	}
	for id := range ids {
		a, b := ms[id], other[id]
		if len(a) != len(b) {
			t.Fatalf("%s: pattern %d: %d vs %d matches", label, id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: pattern %d match %d: %q vs %q", label, id, i, a[i], b[i])
			}
		}
	}
}

func workloads(events int) []*gen.Workload {
	return []*gen.Workload{
		gen.Traffic(gen.TrafficConfig{Types: 7, Events: events, Seed: 11, Keys: 20}),
		gen.Stocks(gen.StocksConfig{Types: 7, Events: events, Seed: 13}),
	}
}

func specsOf(entries []gen.PatternSetEntry) []Spec {
	specs := make([]Spec, len(entries))
	for i, e := range entries {
		specs[i] = Spec{ID: e.ID, Tenant: e.Tenant, Pattern: e.Pattern}
	}
	return specs
}

// runIndependent evaluates every spec on its own adaptive engine.
func runIndependent(t *testing.T, specs []Spec, evs []event.Event) matchSets {
	t.Helper()
	got := matchSets{}
	engines := make([]*engine.Engine, len(specs))
	for i, sp := range specs {
		id := sp.ID
		e, err := engine.New(sp.Pattern, engine.Config{
			OnMatch: func(m *match.Match) { got.add(id, m) },
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	for i := range evs {
		for _, e := range engines {
			e.Process(&evs[i])
		}
	}
	for _, e := range engines {
		e.Finish()
	}
	return got
}

func TestAnalyzeFindsSharing(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 7, Events: 10, Seed: 1})
	entries, err := w.OverlapPatterns(gen.Sequence, 12, 3, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Analyze(specsOf(entries), w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (single tenant, one shared prefix)", len(set.Groups))
	}
	g := set.Groups[0]
	if g.Len != 3 || len(g.Members) != 12 {
		t.Fatalf("group = len %d members %d, want 3/12", g.Len, len(g.Members))
	}
	if r := set.Report(); r.GroupedPatterns != 12 {
		t.Fatalf("report = %+v", r)
	}
}

// TestAnalyzeDedupsUnary interns equal unary predicates across patterns
// into one shared-table entry.
func TestAnalyzeDedupsUnary(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 7, Events: 10, Seed: 1})
	mk := func(last int) Spec {
		b := pattern.NewBuilder(w.Schema, pattern.Seq, 100)
		b.Event(0)
		b.Event(last)
		b.WhereConst(0, "speed", pattern.GT, 50)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return Spec{ID: uint32(last), Pattern: p}
	}
	set, err := Analyze([]Spec{mk(1), mk(2), mk(3)}, w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	r := set.Report()
	if r.TotalUnary != 3 || r.DistinctUnary != 1 {
		t.Fatalf("report = %+v, want 3 total / 1 distinct", r)
	}
}

func TestAnalyzeTenantsSplitGroups(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 7, Events: 10, Seed: 1})
	entries, err := w.OverlapPatterns(gen.Sequence, 12, 3, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Analyze(specsOf(entries), w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Groups) != 3 {
		t.Fatalf("groups = %d, want 3 (one per tenant)", len(set.Groups))
	}
	for _, g := range set.Groups {
		for _, m := range g.Members {
			if set.Specs[m].Tenant != g.Tenant {
				t.Fatalf("group tenant %d holds member of tenant %d", g.Tenant, set.Specs[m].Tenant)
			}
		}
	}
}

// TestSharedMatchesIndependent is the satellite cross-check: for every
// workload and suffix flavor, the shared-evaluation match set per
// pattern must equal independently-run single-pattern engines.
func TestSharedMatchesIndependent(t *testing.T) {
	kinds := []gen.Kind{gen.Sequence, gen.Negation, gen.Kleene}
	for _, w := range workloads(6000) {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s-%v", w.Domain, kind), func(t *testing.T) {
				entries, err := w.OverlapPatterns(kind, 10, 3, 60, 1)
				if err != nil {
					t.Fatal(err)
				}
				specs := specsOf(entries)
				want := runIndependent(t, specs, w.Events)

				got := matchSets{}
				set, err := Analyze(specs, w.Schema)
				if err != nil {
					t.Fatal(err)
				}
				if len(set.Groups) == 0 {
					t.Fatal("no sharing detected; test would not exercise the shared path")
				}
				v, err := NewEvaluator(set, Options{
					OnMatch: func(id uint32, m *match.Match) { got.add(id, m) },
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range w.Events {
					v.Process(&w.Events[i])
				}
				v.Finish()
				want.equal(t, got, fmt.Sprintf("%s/%v", w.Domain, kind))
			})
		}
	}
}

// TestSharedMixedWindows puts subscribers with different windows behind
// one runner (the runner takes the widest; Seed filters per pattern).
func TestSharedMixedWindows(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 7, Events: 6000, Seed: 17})
	e1, err := w.OverlapPatterns(gen.Sequence, 4, 3, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := w.OverlapPatterns(gen.Sequence, 4, 3, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	var specs []Spec
	for i, e := range append(e1, e2...) {
		specs = append(specs, Spec{ID: uint32(i + 1), Pattern: e.Pattern})
	}
	want := runIndependent(t, specs, w.Events)
	got := matchSets{}
	set, err := Analyze(specs, w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Groups) != 1 || len(set.Groups[0].Members) != 8 {
		t.Fatalf("expected one group of 8 across windows, got %+v", set.Groups)
	}
	v, err := NewEvaluator(set, Options{OnMatch: func(id uint32, m *match.Match) { got.add(id, m) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		v.Process(&w.Events[i])
	}
	v.Finish()
	want.equal(t, got, "mixed-windows")
}

// TestTenantBudgetIsolation floods one tenant's budget and checks the
// other tenant's patterns emit exactly their unbudgeted match set.
func TestTenantBudgetIsolation(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 7, Events: 6000, Seed: 19})
	entries, err := w.OverlapPatterns(gen.Sequence, 8, 3, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	specs := specsOf(entries)
	set, err := Analyze(specs, w.Schema)
	if err != nil {
		t.Fatal(err)
	}

	run := func(budgets map[uint32]shed.TenantBudget) (matchSets, *Evaluator) {
		got := matchSets{}
		v, err := NewEvaluator(set, Options{
			OnMatch: func(id uint32, m *match.Match) { got.add(id, m) },
			Budgets: budgets,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Events {
			v.Process(&w.Events[i])
		}
		v.Finish()
		return got, v
	}

	free, _ := run(nil)
	throttled, v := run(map[uint32]shed.TenantBudget{0: {Rate: 20, Burst: 20}})

	stats := v.TenantStats()
	if len(stats) != 2 {
		t.Fatalf("tenant stats = %+v", stats)
	}
	var shed0, shed1 uint64
	for _, st := range stats {
		if st.Tenant == 0 {
			shed0 = st.Shed
		} else {
			shed1 = st.Shed
		}
	}
	if shed0 == 0 {
		t.Fatal("budgeted tenant never shed")
	}
	if shed1 != 0 {
		t.Fatalf("unbudgeted tenant shed %d events", shed1)
	}
	// Tenant 1's patterns (even ids are tenant 0: ids are 1-based, so
	// tenant = (id-1) % 2) must be untouched.
	for _, sp := range specs {
		a, b := free[sp.ID], throttled[sp.ID]
		sort.Strings(a)
		sort.Strings(b)
		if sp.Tenant == 1 {
			if len(a) != len(b) {
				t.Fatalf("isolated tenant pattern %d: %d vs %d matches", sp.ID, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("isolated tenant pattern %d diverged", sp.ID)
				}
			}
		}
	}
	// Recall accounting is surfaced per pattern.
	for _, pm := range v.Metrics() {
		if pm.Tenant == 0 && pm.M.EventsShed == 0 {
			t.Fatalf("pattern %d of throttled tenant reports no shed events", pm.ID)
		}
		if pm.Tenant == 1 && pm.M.EventsShed != 0 {
			t.Fatalf("pattern %d of isolated tenant reports shed events", pm.ID)
		}
	}
}

// TestRuntimeAddRemove mutates the set mid-stream and checks patterns
// present throughout emit exactly what they would without the mutation.
func TestRuntimeAddRemove(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 7, Events: 6000, Seed: 23})
	entries, err := w.OverlapPatterns(gen.Sequence, 8, 3, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := specsOf(entries)
	baseline := runIndependent(t, specs, w.Events)

	got := matchSets{}
	set, err := Analyze(specs[:7], w.Schema) // last spec joins at runtime
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewEvaluator(set, Options{OnMatch: func(id uint32, m *match.Match) { got.add(id, m) }})
	if err != nil {
		t.Fatal(err)
	}
	half := len(w.Events) / 2
	for i := 0; i < half; i++ {
		v.Process(&w.Events[i])
	}
	if err := v.Add(specs[7]); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove(specs[2].ID); err != nil {
		t.Fatal(err)
	}
	if n := len(v.Patterns()); n != 7 {
		t.Fatalf("pattern count after add+remove = %d, want 7", n)
	}
	for i := half; i < len(w.Events); i++ {
		v.Process(&w.Events[i])
	}
	v.Finish()

	// Patterns registered from the start and never removed must be
	// byte-identical to the no-mutation baseline.
	for _, sp := range specs[:7] {
		if sp.ID == specs[2].ID {
			continue
		}
		a, b := baseline[sp.ID], got[sp.ID]
		sort.Strings(a)
		sort.Strings(b)
		if len(a) != len(b) {
			t.Fatalf("undisturbed pattern %d: %d vs %d matches", sp.ID, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("undisturbed pattern %d diverged at %d", sp.ID, i)
			}
		}
	}
	// The added pattern detects from its join point: a subset of the
	// full-stream baseline.
	added := got[specs[7].ID]
	full := map[string]bool{}
	for _, k := range baseline[specs[7].ID] {
		full[k] = true
	}
	for _, k := range added {
		if !full[k] {
			t.Fatalf("added pattern emitted %q not in full-stream set", k)
		}
	}
	// The removed pattern emitted only before removal.
	if len(got[specs[2].ID]) > len(baseline[specs[2].ID]) {
		t.Fatalf("removed pattern emitted more than baseline")
	}
}

// TestSharedMetrics sanity-checks the synthesized per-pattern metrics.
func TestSharedMetrics(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 7, Events: 3000, Seed: 29})
	entries, err := w.OverlapPatterns(gen.Sequence, 6, 3, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := specsOf(entries)
	set, err := Analyze(specs, w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	matches := 0
	v, err := NewEvaluator(set, Options{OnMatch: func(uint32, *match.Match) { matches++ }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		v.Process(&w.Events[i])
	}
	v.Finish()
	total := uint64(0)
	for _, pm := range v.Metrics() {
		if pm.M.EventsArrived != uint64(len(w.Events)) {
			t.Fatalf("pattern %d arrived = %d, want %d", pm.ID, pm.M.EventsArrived, len(w.Events))
		}
		total += pm.M.Matches
	}
	if total != uint64(matches) {
		t.Fatalf("metrics matches %d != emitted %d", total, matches)
	}
	if v.LivePMs() < 0 {
		t.Fatal("LivePMs negative")
	}
}
