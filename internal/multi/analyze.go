// Package multi is the multi-pattern registry and shared-evaluation
// layer: it sits between ingestion and the per-pattern engines, analyzes
// the registered pattern set at compile time to factor out work the
// patterns have in common, and gates each tenant's patterns behind a
// token-bucket budget (see internal/shed).
//
// Two kinds of sharing are detected (the "global plan" setting of
// Kolchinsky & Schuster's join-query-ordering work, applied to this
// paper's evaluation structures):
//
//   - Common unary predicates. Every distinct (type, attribute, op,
//     constant) unary predicate across the whole set is evaluated at most
//     once per event; the verdicts are composed into the per-pattern
//     position masks the engines already consume (pattern.MaskValid), so
//     a predicate shared by 100 patterns costs one comparison instead of
//     100.
//
//   - Shared SEQ prefixes. Patterns whose first j core positions agree
//     exactly — same types, same unary predicates, same intra-prefix
//     pairwise predicates, same tenant — are grouped behind one prefix
//     runner: a core-only NFA over the common prefix that detects every
//     prefix assignment once and publishes it to all subscribing
//     patterns, which skip those positions entirely and resume from
//     seeded partial matches (nfa.Engine.SetSharedPrefix/Seed). The
//     runner's window is the widest subscriber window; Seed filters
//     per-subscriber, so each pattern's match set is provably identical
//     to independent evaluation.
//
// Sharing never crosses tenants for prefix runners (a runner can only
// serve patterns that see the same post-shed stream), while unary
// verdicts are shed-independent and safely shared set-wide.
package multi

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/pattern"
)

// Spec registers one pattern: a set-unique id, the owning tenant, the
// pattern itself, and the engine configuration used when the pattern is
// evaluated independently (group members run a fixed-plan NFA instead;
// see Evaluator). Config.OnMatch/ExternalEvents/OwnedEmit are managed by
// the evaluator and ignored here.
type Spec struct {
	ID      uint32
	Tenant  uint32
	Pattern *pattern.Pattern
	Config  engine.Config
}

// PrefixGroup is one shared-prefix subscription: Members (indices into
// the analyzed spec slice) share the pattern Prefix over their first Len
// core positions.
type PrefixGroup struct {
	Prefix  *pattern.Pattern
	Len     int
	Tenant  uint32
	Members []int
}

// Set is the compile-time analysis of a pattern set.
type Set struct {
	Specs  []Spec
	Groups []PrefixGroup

	schema *event.Schema
	preds  []globalPred
	predID map[predKey]int
	member []int // member[i] = group index of spec i, or -1
}

// globalPred is one distinct unary predicate in the set-wide table.
type globalPred struct {
	typ int
	cu  pattern.CUnary
}

type predKey struct {
	typ  int
	attr int
	op   pattern.CmpOp
	c    uint64 // float bits
}

// Report summarizes the analysis for diagnostics and benchmarks.
type Report struct {
	Patterns        int
	TotalUnary      int // unary predicate instances across all patterns
	DistinctUnary   int // entries in the shared verdict table
	Groups          int
	GroupedPatterns int
}

func (r Report) String() string {
	return fmt.Sprintf("multi: %d patterns, %d/%d unary preds distinct, %d prefix groups covering %d patterns",
		r.Patterns, r.DistinctUnary, r.TotalUnary, r.Groups, r.GroupedPatterns)
}

// Analyze inspects the pattern set and builds its sharing structure. The
// specs must carry distinct IDs and non-nil patterns valid against the
// schema.
func Analyze(specs []Spec, schema *event.Schema) (*Set, error) {
	if schema == nil {
		return nil, fmt.Errorf("multi: nil schema")
	}
	s := &Set{
		Specs:  append([]Spec(nil), specs...),
		schema: schema,
		predID: make(map[predKey]int),
		member: make([]int, len(specs)),
	}
	seen := make(map[uint32]bool)
	for i, sp := range s.Specs {
		if sp.Pattern == nil {
			return nil, fmt.Errorf("multi: spec %d (id %d) has nil pattern", i, sp.ID)
		}
		if seen[sp.ID] {
			return nil, fmt.Errorf("multi: duplicate pattern id %d", sp.ID)
		}
		seen[sp.ID] = true
		s.member[i] = -1
		s.registerPreds(sp.Pattern)
	}
	if err := s.group(); err != nil {
		return nil, err
	}
	return s, nil
}

// registerPreds folds a pattern's unary predicates into the global
// verdict table (recursing into OR disjuncts).
func (s *Set) registerPreds(p *pattern.Pattern) {
	if p.Op == pattern.Or {
		for _, sub := range p.Subs {
			s.registerPreds(sub)
		}
		return
	}
	for i, pos := range p.Positions {
		for _, cu := range p.Unary(i) {
			s.internPred(pos.Type, cu)
		}
	}
}

func (s *Set) internPred(typ int, cu pattern.CUnary) int {
	k := predKey{typ: typ, attr: cu.Attr, op: cu.Op, c: math.Float64bits(cu.C)}
	if id, ok := s.predID[k]; ok {
		return id
	}
	id := len(s.preds)
	s.preds = append(s.preds, globalPred{typ: typ, cu: cu})
	s.predID[k] = id
	return id
}

// eligible reports the longest shareable prefix length of spec i: SEQ
// patterns with at least three core positions can share prefixes of 2 up
// to core-1 positions (at least one position must remain with the
// subscriber engine).
func (s *Set) eligible(i int) int {
	p := s.Specs[i].Pattern
	if p.Op != pattern.Seq {
		return 0
	}
	if n := len(p.Core()); n >= 3 {
		return n - 1
	}
	return 0
}

// prefixSignature renders the first j core positions of spec i — types,
// unary predicates, and intra-prefix pairwise checks — as a canonical
// string. Two patterns with equal signatures (and equal tenant) detect
// identical prefix assignments and can share one runner.
func (s *Set) prefixSignature(i, j int) string {
	p := s.Specs[i].Pattern
	core := p.Core()
	var b strings.Builder
	for t := 0; t < j; t++ {
		c := core[t]
		fmt.Fprintf(&b, "T%d[", p.Positions[c].Type)
		us := append([]pattern.CUnary(nil), p.Unary(c)...)
		sort.Slice(us, func(a, z int) bool {
			if us[a].Attr != us[z].Attr {
				return us[a].Attr < us[z].Attr
			}
			if us[a].Op != us[z].Op {
				return us[a].Op < us[z].Op
			}
			return us[a].C < us[z].C
		})
		for _, u := range us {
			fmt.Fprintf(&b, "a%d%s%x;", u.Attr, u.Op, math.Float64bits(u.C))
		}
		b.WriteString("]")
		for u := 0; u < t; u++ {
			pc := p.Pair(c, core[u])
			ps := append([]pattern.CPair(nil), pc.Preds...)
			sort.Slice(ps, func(a, z int) bool {
				if ps[a].AttrN != ps[z].AttrN {
					return ps[a].AttrN < ps[z].AttrN
				}
				if ps[a].AttrO != ps[z].AttrO {
					return ps[a].AttrO < ps[z].AttrO
				}
				if ps[a].Op != ps[z].Op {
					return ps[a].Op < ps[z].Op
				}
				return ps[a].C < ps[z].C
			})
			fmt.Fprintf(&b, "P%d:", u)
			for _, cp := range ps {
				fmt.Fprintf(&b, "n%do%d%s%x;", cp.AttrN, cp.AttrO, cp.Op, math.Float64bits(cp.C))
			}
		}
		b.WriteString("|")
	}
	return b.String()
}

// group detects shared prefixes greedily, longest first: at each length
// j (descending), ungrouped eligible patterns are bucketed by (tenant,
// signature) and every bucket of two or more becomes a group.
func (s *Set) group() error {
	maxJ := 0
	for i := range s.Specs {
		if m := s.eligible(i); m > maxJ {
			maxJ = m
		}
	}
	for j := maxJ; j >= 2; j-- {
		type bkey struct {
			tenant uint32
			sig    string
		}
		buckets := make(map[bkey][]int)
		var order []bkey
		for i := range s.Specs {
			if s.member[i] >= 0 || s.eligible(i) < j {
				continue
			}
			k := bkey{s.Specs[i].Tenant, s.prefixSignature(i, j)}
			if len(buckets[k]) == 0 {
				order = append(order, k)
			}
			buckets[k] = append(buckets[k], i)
		}
		for _, k := range order {
			members := buckets[k]
			if len(members) < 2 {
				continue
			}
			prefix, err := s.buildPrefix(members[0], j, members)
			if err != nil {
				return err
			}
			g := PrefixGroup{Prefix: prefix, Len: j, Tenant: k.tenant, Members: members}
			for _, m := range members {
				s.member[m] = len(s.Groups)
			}
			s.Groups = append(s.Groups, g)
		}
	}
	return nil
}

// buildPrefix reconstructs the standalone prefix pattern from the
// compiled tables of one member: j core positions with their types,
// unary predicates, and intra-prefix pair predicates, under the widest
// member window (per-subscriber window filtering happens at Seed).
func (s *Set) buildPrefix(ref, j int, members []int) (*pattern.Pattern, error) {
	p := s.Specs[ref].Pattern
	core := p.Core()
	window := event.Time(0)
	for _, m := range members {
		if w := s.Specs[m].Pattern.Window; w > window {
			window = w
		}
	}
	b := pattern.NewBuilder(s.schema, pattern.Seq, window)
	for t := 0; t < j; t++ {
		b.Event(p.Positions[core[t]].Type)
	}
	for t := 0; t < j; t++ {
		c := core[t]
		for _, cu := range p.Unary(c) {
			b.WherePred(pattern.Pred{L: t, R: pattern.Unary, AttrL: cu.Attr, Op: cu.Op, C: cu.C})
		}
		for u := 0; u < t; u++ {
			pc := p.Pair(c, core[u])
			for _, cp := range pc.Preds {
				// CPair is oriented with the event at core[t] (the later
				// position) as the "new" left operand; as a declared Pred
				// that is L=t, R=u verbatim.
				b.WherePred(pattern.Pred{L: t, R: u, AttrL: cp.AttrN, AttrR: cp.AttrO, Op: cp.Op, C: cp.C})
			}
		}
	}
	prefix, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("multi: building shared prefix: %w", err)
	}
	return prefix, nil
}

// GroupOf returns the prefix-group index evaluating spec i's prefix, or
// -1 when the pattern runs independently.
func (s *Set) GroupOf(i int) int { return s.member[i] }

// Report summarizes the sharing the analysis found.
func (s *Set) Report() Report {
	r := Report{Patterns: len(s.Specs), DistinctUnary: len(s.preds), Groups: len(s.Groups)}
	for _, sp := range s.Specs {
		r.TotalUnary += countUnary(sp.Pattern)
	}
	for _, g := range s.Groups {
		r.GroupedPatterns += len(g.Members)
	}
	return r
}

func countUnary(p *pattern.Pattern) int {
	if p.Op == pattern.Or {
		n := 0
		for _, sub := range p.Subs {
			n += countUnary(sub)
		}
		return n
	}
	n := 0
	for i := range p.Positions {
		n += len(p.Unary(i))
	}
	return n
}
