package wire

import (
	"bytes"
	"testing"

	"acep/internal/event"
	"acep/internal/match"
)

// benchBatch builds one delta-friendly Batch of n events: four rotating
// types (so decode produces short columnar spans, the realistic shape),
// monotone TS/Seq with small deltas, four attributes per event.
func benchBatch(n int) Batch {
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Type:  i % 4,
			TS:    event.Time(1000 + i),
			Seq:   uint64(1 + i),
			Attrs: []float64{float64(i), float64(i % 97), 42.5, -1.25},
		}
	}
	return Batch{UpTo: uint64(n), Events: evs}
}

// BenchmarkBatchEncode measures the v2 delta encoding of a 256-event
// Batch frame into a reused buffer (ns/event; allocs/op must be zero
// steady-state — the buffer is warm after the first iteration).
func BenchmarkBatchEncode(b *testing.B) {
	const n = 256
	var f Frame = benchBatch(n) // box once: measure the codec, not the interface conversion
	dst := Append(nil, f)       // warm the buffer to final size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Append(dst[:0], f)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/event")
}

// BenchmarkBatchDecode measures decoding a 256-event v2 delta frame:
// the copying path (one event.Event slice + per-event Attrs per frame)
// against the decode-into-arena path (events materialized once, in
// place, in recycled arena chunks — zero allocations steady-state).
func BenchmarkBatchDecode(b *testing.B) {
	const n = 256
	batch := benchBatch(n)
	frame := Append(nil, batch)
	horizon := batch.Events[n-1].TS + 1

	b.Run("copy", func(b *testing.B) {
		br := bytes.NewReader(frame)
		r := NewReader(br)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			br.Reset(frame)
			if _, err := r.Read(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/event")
	})

	b.Run("arena", func(b *testing.B) {
		var arena match.Arena
		// The benchmark drops every decoded pointer before each Release,
		// so recycling is safe here and makes the steady state visible.
		arena.SetRecycle(true)
		br := bytes.NewReader(frame)
		r := NewReader(br)
		r.SetDecodeArena(&arena)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			br.Reset(frame)
			if _, err := r.Read(); err != nil {
				b.Fatal(err)
			}
			arena.Release(horizon)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/event")
	})
}

// TestBatchDecodeArenaAllocs is the allocation-regression guard of the
// zero-copy ingest path: once the Reader scratch and the recycling
// arena's free list are warm, decoding a whole Batch frame into the
// arena must not allocate at all — 0 allocs/event, and 0 allocs/frame.
func TestBatchDecodeArenaAllocs(t *testing.T) {
	const n = 256
	batch := benchBatch(n)
	frame := Append(nil, batch)
	horizon := batch.Events[n-1].TS + 1

	var arena match.Arena
	arena.SetRecycle(true) // every pointer is dropped before each Release
	br := bytes.NewReader(frame)
	r := NewReader(br)
	r.SetDecodeArena(&arena)
	decode := func() {
		br.Reset(frame)
		f, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		v, ok := f.(*BatchView)
		if !ok {
			t.Fatalf("decode arena set but Read returned %T", f)
		}
		if len(v.Events) != n {
			t.Fatalf("decoded %d events, want %d", len(v.Events), n)
		}
		arena.Release(horizon)
	}
	for i := 0; i < 4; i++ {
		decode() // warm Reader buffers, span scratch and the free list
	}
	if avg := testing.AllocsPerRun(100, decode); avg != 0 {
		t.Fatalf("decode-into-arena allocated %.2f times per %d-event frame; want 0 steady-state", avg, n)
	}
}

// TestBatchEncodeAllocs pins the encode side: appending a Batch frame
// onto a warm buffer performs no allocation.
func TestBatchEncodeAllocs(t *testing.T) {
	var f Frame = benchBatch(256) // box once: the codec itself must not allocate
	dst := Append(nil, f)
	if avg := testing.AllocsPerRun(100, func() {
		dst = Append(dst[:0], f)
	}); avg != 0 {
		t.Fatalf("warm Batch encode allocated %.2f times per frame; want 0", avg)
	}
}
