// Package wire is the versioned binary codec of the distributed cluster
// layer (internal/cluster): it frames the messages exchanged between the
// ingress coordinator and its worker nodes — event batches with their
// watermark cuts, tagged matches flowing back, completion watermarks,
// merged engine metrics, and the handshake that pins protocol version,
// pattern identity and shard layout before any event crosses the wire.
//
// # Framing
//
// Every frame is length-prefixed:
//
//	[u32 little-endian length][u8 kind][body]
//
// where length covers kind+body and is bounded by MaxFrame, so a corrupt
// prefix cannot force an unbounded allocation. Bodies use unsigned/signed
// varints for counters and identifiers and little-endian IEEE-754 bit
// patterns for attribute values, which round-trip exactly (including NaN
// payloads, which partition keys may carry through Float64bits).
//
// Batch frames delta-encode timestamps and sequence numbers against the
// previous event in the frame: both are near-monotone within one cut, so
// the deltas almost always fit one varint byte where the absolute values
// take three to five. Matches keep absolute encoding (their events are
// position-ordered, not arrival-ordered).
//
// The protocol version travels in the Hello frame; both sides reject a
// mismatch at handshake time, so all later frames can assume one version.
// Decode never panics on arbitrary input — it returns an error for every
// truncated, oversized or structurally invalid frame (FuzzDecode asserts
// this), and all internal counts are validated against explicit caps
// before allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/shed"
	"acep/internal/stats"
)

// Version is the protocol version carried in Hello frames. Bump on any
// incompatible body-layout change.
//
// v2: delta-encoded Batch bodies, pattern+schema shipping, and the
// failover frames (Heartbeat plus the since-removed block Reassign /
// RecoveryDone pair).
//
// v3: per-shard elasticity — Assign carries an explicit (possibly zero)
// initial block size, tagged matches carry their global shard index,
// and the migration frames (Migrate, MigrateAck, ShardRoute,
// ShardStats) replace the v2 block-reassignment handshake.
//
// v4: pattern multiplexing and tenancy — Assign ships the whole pattern
// set (primary plus Extra entries, each tagged with a pattern id and
// tenant) and the per-tenant budget table; tagged matches and Metrics
// carry the emitting pattern's id; Metrics additionally reports
// per-tenant admission counters; ShardStat is stamped with the cut its
// sample was taken at; and the PatternAdd/PatternRemove frames register
// and retire patterns on a running node.
//
// v5: ingress high availability — Assign is epoch-stamped so workers
// fence sessions from a superseded coordinator; the replication frames
// (ReplCut, ReplState, Epoch) carry the primary's sealed cuts, owner
// table and emission boundary to a hot-standby ingress over a dedicated
// replication link; and Takeover announces a successor's assumption of
// the cluster, carrying the emission boundary below which every match
// was already delivered.
//
// v6: partition tolerance — ReplCut carries a dense cut ordinal so a
// mirror detects duplicated, reordered or dropped replication frames
// instead of silently desynchronizing; Epoch ships the journal sizing
// (window, slack, byte bound) so an out-of-process standby needs no
// pattern knowledge; the lease frames (LeaseAcquire, LeaseRenew,
// LeaseFence) carry the single-writer emission lease that arbitrates
// split-brain; and the handover frames (Handover, HandoverState) let a
// takeover successor pull the mirrored state back from a standby
// process over TCP.
const Version = 6

// MaxFrame bounds one frame's payload (kind+body) in bytes; Decode and
// Reader reject larger length prefixes as corrupt.
const MaxFrame = 1 << 26

// Structural caps validated before any decode-side allocation.
const (
	maxBatchEvents = 1 << 22 // events per Batch frame
	maxAttrs       = 1 << 12 // attributes per event
	maxPositions   = 1 << 12 // positions per match
	maxKleene      = 1 << 20 // events per Kleene closure
	maxSamples     = 1 << 16 // retained quantile samples per estimator

	// Pattern/schema shipping caps (Assign payloads).
	maxSchemaTypes  = 1 << 10 // event types per schema
	maxSchemaAttrs  = 1 << 8  // attributes per type
	maxNameBytes    = 1 << 8  // bytes per type/attribute name
	maxPatPositions = 1 << 10 // positions per (sub-)pattern
	maxPatPreds     = 1 << 12 // predicates per (sub-)pattern
	maxSubPatterns  = 1 << 8  // disjuncts per OR pattern

	// Elasticity caps (ShardRoute owner tables, ShardStats entries).
	maxRouteShards = 1 << 20 // global shards per ShardRoute table
	maxShardStats  = 1 << 20 // entries per ShardStats frame

	// Multi-pattern caps (Assign extras, tenant tables).
	maxPatternEntries = 1 << 12 // extra pattern entries per Assign
	maxTenantEntries  = 1 << 12 // tenant budget/stat entries per frame

	// Ingress-HA caps (ReplCut topology tables and per-shard runs).
	maxReplRuns  = 1 << 20 // per-shard event runs per ReplCut
	maxNodeAddrs = 1 << 16 // node addresses per ReplCut table
)

// Kind tags a frame's body layout.
type Kind uint8

const (
	// KindHello is the node's handshake greeting: protocol version, the
	// node's local shard count, and the pattern fingerprint it serves.
	KindHello Kind = 1 + iota
	// KindAssign is the ingress's handshake reply: the node's base index
	// in the global shard space and the cluster-wide total.
	KindAssign
	// KindBatch carries one uniform cut: the node's events accumulated
	// since the last cut (possibly none) plus the global watermark.
	KindBatch
	// KindWatermark reports node completion: every match tagged at or
	// below UpTo has been sent.
	KindWatermark
	// KindMatch carries one detected match with its merge tag.
	KindMatch
	// KindMetrics carries a node's merged engine metrics (sent once,
	// after Finish).
	KindMetrics
	// KindFinish signals end of stream (ingress → node).
	KindFinish
	// KindHeartbeat is a node liveness signal (node → ingress), emitted on
	// receipt of every cut — before processing it — so the ingress failure
	// detector can tell a slow node from a dead one. UpTo echoes the
	// received cut's watermark.
	KindHeartbeat
	// KindMigrate hands one global shard to the receiving node
	// (ingress → node): the node becomes the shard's owner, suppresses
	// any of its matches tagged at or below SuppressUpTo (those were
	// already delivered by the merge collector), and acknowledges with
	// MigrateAck once its completion watermark reaches ReplayUpTo.
	KindMigrate
	// KindMigrateAck reports that a migrated shard's replay window has
	// been consumed: the node's completion watermark passed the
	// migration's ReplayUpTo, so the shard is live on its new owner.
	KindMigrateAck
	// KindShardRoute broadcasts the authoritative shard → node owner
	// table after a routing change (ingress → node), so nodes know the
	// full placement rather than inferring it from Migrate frames.
	KindShardRoute
	// KindShardStats carries a node's per-shard load snapshot
	// (node → ingress): events processed and queue-wait p99 per owned
	// shard, feeding the ingress placement controller.
	KindShardStats
	// KindPatternAdd registers one additional pattern on a running node
	// (ingress → node). The node starts evaluating it at the next cut
	// boundary; already-registered patterns are unaffected.
	KindPatternAdd
	// KindPatternRemove retires one pattern on a running node
	// (ingress → node); its partial matches are discarded and no further
	// matches with its id are emitted after the next cut boundary.
	KindPatternRemove
	// KindReplCut replicates one sealed cut to a hot-standby ingress
	// (primary → standby): the cut's per-shard event runs plus, when the
	// topology changed, the shard owner table and per-slot node
	// addresses. The standby appends the cut to its mirror journal and
	// acknowledges with a Watermark frame on the same link.
	KindReplCut
	// KindReplState publishes the primary's emission boundary
	// (primary → standby): every match tagged at or below EmittedUpTo has
	// been delivered to the consumer, Count matches in total. On takeover
	// the successor suppresses regenerated matches at or below the
	// boundary.
	KindReplState
	// KindTakeover announces a successor ingress to a worker
	// (successor → node, right after the Assign handshake): the
	// successor's epoch, the emission boundary below which every match
	// was already delivered to the consumer, and the delivered count at
	// that boundary. The node suppresses any match tagged at or below
	// Boundary for the rest of the session.
	KindTakeover
	// KindEpoch opens a replication link (primary → standby), declaring
	// the primary's coordination epoch; a takeover successor runs at
	// Epoch+1 and fences the old primary's worker sessions via the
	// epoch-stamped Assign.
	KindEpoch
	// KindLeaseAcquire requests the single-writer emission lease
	// (holder → lease server): grant it to Holder for TTLMillis if it is
	// free, expired, or already held by Holder. The server answers with a
	// LeaseFence frame either way.
	KindLeaseAcquire
	// KindLeaseRenew extends a held lease (holder → lease server) and
	// commits the holder's emission boundary: EmittedUpTo/Count record
	// the prefix the holder is about to emit, persisted at the server
	// *before* the matches reach the consumer, so a successor acquiring
	// the lease learns exactly what the fenced holder delivered.
	// TTLMillis zero releases the lease (the boundary survives).
	KindLeaseRenew
	// KindLeaseFence is the lease server's arbitration answer
	// (lease server → holder): whether the request was granted, who
	// holds the lease at which fencing epoch, the last committed
	// emission boundary, and — on denial — how long the current grant
	// has left.
	KindLeaseFence
	// KindHandover asks a standby process for its mirrored state
	// (successor → standby): the successor has acquired the lease and is
	// about to rebuild the coordinator. The standby answers with one
	// HandoverState header followed by its retained journal cuts as
	// ReplCut frames.
	KindHandover
	// KindHandoverState is the handover header (standby → successor):
	// the mirror's watermarks, emission state, topology tables, and the
	// number of ReplCut frames that follow.
	KindHandoverState
)

// String names the frame kind.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindAssign:
		return "assign"
	case KindBatch:
		return "batch"
	case KindWatermark:
		return "watermark"
	case KindMatch:
		return "match"
	case KindMetrics:
		return "metrics"
	case KindFinish:
		return "finish"
	case KindHeartbeat:
		return "heartbeat"
	case KindMigrate:
		return "migrate"
	case KindMigrateAck:
		return "migrate-ack"
	case KindShardRoute:
		return "shard-route"
	case KindShardStats:
		return "shard-stats"
	case KindPatternAdd:
		return "pattern-add"
	case KindPatternRemove:
		return "pattern-remove"
	case KindReplCut:
		return "repl-cut"
	case KindReplState:
		return "repl-state"
	case KindTakeover:
		return "takeover"
	case KindEpoch:
		return "epoch"
	case KindLeaseAcquire:
		return "lease-acquire"
	case KindLeaseRenew:
		return "lease-renew"
	case KindLeaseFence:
		return "lease-fence"
	case KindHandover:
		return "handover"
	case KindHandoverState:
		return "handover-state"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Frame is one decoded protocol message.
type Frame interface{ kind() Kind }

// Hello is the node's handshake greeting.
type Hello struct {
	Version    uint32
	Shards     uint32 // local shard engines hosted by the node
	PatternSig uint64 // Fingerprint of the served pattern
}

// Assign is the ingress's handshake reply fixing the shard layout: the
// node initially owns global shard indices [Base, Base+Shards) out of
// Total (Shards may be zero — a node admitted into a running cluster
// starts empty and receives its shards via Migrate frames). The ingress
// ships its pattern and schema in the reply, so a bare node (one started
// without out-of-band configuration, Hello.PatternSig == 0) can serve
// any ingress; configured nodes cross-validate via the fingerprint in
// Hello and may ignore the payload.
type Assign struct {
	Base    uint32
	Shards  uint32 // initial block size (0 = join empty, shards arrive by Migrate)
	Total   uint32 // cluster-wide shard count
	Pattern *pattern.Pattern
	Schema  *event.Schema

	// Extra is the rest of the multi-pattern set (v4): every pattern
	// beyond the primary, each with its own id and tenant. Single-pattern
	// clusters leave it empty. When Extra is non-empty the primary
	// pattern's id/tenant travel as Extra[0]-style metadata in PrimaryID
	// and PrimaryTenant.
	Extra         []PatternEntry
	PrimaryID     uint32
	PrimaryTenant uint32

	// Tenants is the per-tenant budget table applied node-side before
	// pattern evaluation (v4); empty means no tenant is budgeted.
	Tenants []TenantBudgetEntry

	// Epoch is the sending coordinator's epoch (v5). A node remembers the
	// highest epoch it has ever been assigned under and rejects sessions
	// carrying a lower one, fencing a superseded primary whose standby
	// already took over. Zero on clusters without ingress HA.
	Epoch uint64
}

// PatternEntry is one pattern of a multi-pattern set: the id tagging its
// matches and metrics on the wire, the tenant it bills to, and the
// pattern itself.
type PatternEntry struct {
	ID      uint32
	Tenant  uint32
	Pattern *pattern.Pattern
}

// TenantBudgetEntry binds one tenant to its token-bucket budget.
type TenantBudgetEntry struct {
	Tenant uint32
	Budget shed.TenantBudget
}

// Batch is one uniform cut of events bound for a node.
type Batch struct {
	UpTo   uint64 // global sequence watermark the cut covers
	Events []event.Event
}

// BatchView is the zero-copy decode of a Batch frame: a Reader with a
// decode arena (SetDecodeArena) materializes each event exactly once,
// directly into an arena chunk, and returns pointers to the arena slots
// instead of an intermediate []event.Event. Spans describe the columnar
// runs the decode produced (consecutive same-type events whose attribute
// blocks sit back to back in one chunk's flat buffer), partitioning
// Events so callers can precompute unary predicate masks with stride
// scans.
//
// The view itself — Read returns a pointer to a Reader-owned BatchView,
// so the steady-state decode performs no allocation at all — and its
// Events and Spans slice headers are scratch reused by the next Read on
// the same Reader; the arena events they point at live until the arena
// releases their chunk. BatchView frames exist only on the decode side —
// senders encode Batch.
type BatchView struct {
	UpTo   uint64
	Events []*event.Event
	Spans  []event.Span
}

// Watermark reports a node's completion progress.
type Watermark struct {
	UpTo uint64
}

// TaggedMatch is one detected match with its merge tag: the global
// shard index whose engine emitted it and the sequence number of the
// event whose processing emitted it (the within-shard order is implied
// by frame order on the connection). Tagging matches with their shard —
// not their node — is what lets a shard's stream resume from a
// different node mid-run with the merge collector none the wiser.
type TaggedMatch struct {
	Shard   uint32
	Seq     uint64
	Pattern uint32 // id of the emitting pattern (0 on single-pattern clusters)
	M       *match.Match
}

// TaggedMatchRaw is a pre-encoded tagged match: Body holds the exact
// bytes AppendMatchBody produced from the match, so Append emits a frame
// byte-identical to the TaggedMatch it replaces without ever
// materializing a heap match. Nodes running the owned-emit path encode
// matches from the resolver's scratch straight into per-shard outbox
// slabs and send them as TaggedMatchRaw; the receiving side decodes a
// regular TaggedMatch (stream transports) or calls DecodeMatchBody
// (in-process pipes).
type TaggedMatchRaw struct {
	Shard   uint32
	Seq     uint64
	Pattern uint32
	Body    []byte
}

// Metrics carries a node's merged engine metrics. On multi-pattern
// clusters one Metrics frame is sent per pattern, tagged with the
// pattern's id; Tenants reports the node's per-tenant admission
// counters (sent on the first frame only, to avoid double counting).
type Metrics struct {
	M       engine.Metrics
	Pattern uint32
	Tenants []shed.TenantStat
}

// Finish signals end of stream.
type Finish struct{}

// Heartbeat is a node liveness signal (see KindHeartbeat).
type Heartbeat struct {
	UpTo uint64
}

// Migrate hands one global shard to the receiving node. The node
// becomes the shard's owner immediately; journaled cuts covering the
// shard's window follow on the same connection, so the node suppresses
// the shard's matches tagged at or below SuppressUpTo (already
// delivered by the merge collector before the handoff) and answers with
// MigrateAck once its completion watermark reaches ReplayUpTo. Pattern
// and schema travel in the Assign handshake, not here — by the time a
// Migrate arrives the node is already configured.
type Migrate struct {
	Shard        uint32
	SuppressUpTo uint64
	ReplayUpTo   uint64
}

// MigrateAck reports that a migrated shard's replay window has been
// consumed on its new owner (see KindMigrateAck). UpTo echoes the
// completion watermark that crossed the migration's ReplayUpTo.
type MigrateAck struct {
	Shard uint32
	UpTo  uint64
}

// ShardRoute is the authoritative shard → node owner table: Owner[g] is
// the ingress-side slot index owning global shard g. Broadcast to every
// live node after a routing change.
type ShardRoute struct {
	Owner []uint32
}

// ShardStats is a node's per-shard load snapshot (see KindShardStats).
type ShardStats struct {
	Stats []ShardStat
}

// ShardStat is one shard's load sample: events processed by its engine
// since the session started and the engine's queue-wait p99 estimate.
// Cut stamps the sample with the global watermark it was taken at (v4),
// so the ingress placement controller can discard reports staled by an
// intervening migration instead of rebalancing on pre-move load.
type ShardStat struct {
	Shard    uint32
	Events   uint64
	P99Nanos uint64
	Cut      uint64
}

// PatternAdd registers one additional pattern on a running node (see
// KindPatternAdd). The pattern is validated against the schema shipped
// in the Assign handshake on application, not at decode time.
type PatternAdd struct {
	Entry PatternEntry
}

// PatternRemove retires one pattern on a running node (see
// KindPatternRemove).
type PatternRemove struct {
	ID uint32
}

// ReplCut replicates one sealed cut to a hot-standby ingress (see
// KindReplCut). Runs carries the cut's events grouped by global shard
// (shards with no events in the cut are omitted); Owner and Addrs ship
// the shard→slot table and per-slot worker addresses only on the cuts
// where the topology changed (nil otherwise — the standby keeps the last
// received tables). Final marks the stream-ending cut: the primary
// finished cleanly and the standby must stand down instead of taking
// over when the link closes.
type ReplCut struct {
	UpTo uint64
	// Cut is the dense per-run cut ordinal (1, 2, 3, … — v6). The mirror
	// uses it to recognize a duplicated or reordered frame (Cut at or
	// below the last mirrored ordinal: ack again, mirror nothing) and to
	// detect a dropped one (a gap: the mirror is desynchronized and must
	// fail the link rather than journal an incomplete history).
	Cut   uint64
	Final bool
	Owner []uint32
	Addrs []string
	Runs  []ReplRun
}

// ReplRun is one shard's slice of a replicated cut.
type ReplRun struct {
	Shard  uint32
	Events []event.Event
}

// ReplState publishes the primary's emission boundary to its standby
// (see KindReplState): every match tagged at or below EmittedUpTo has
// been delivered, Count matches in total. The standby advances its
// mirror journal's retention horizon to the boundary — matches above it
// may need regeneration on takeover, so the history that produces them
// must stay replayable.
type ReplState struct {
	EmittedUpTo uint64
	Count       uint64
}

// Takeover announces a successor ingress to a worker (see
// KindTakeover).
type Takeover struct {
	Epoch    uint64
	Boundary uint64 // suppress matches tagged ≤ Boundary (already delivered)
	Count    uint64 // matches delivered at the boundary (accounting)
}

// Epoch opens a replication link, declaring the primary's coordination
// epoch (see KindEpoch). Since v6 it also ships the mirror journal's
// sizing — the pattern window, the retention slack and the byte bound —
// so an out-of-process standby (cmd/acep-standby) can size its journal
// without any pattern knowledge of its own.
type Epoch struct {
	Epoch    uint64
	Window   int64  // pattern window (journal retention unit); 0 on non-replication uses
	Slack    uint32 // retention horizon in windows (0 = journal default)
	MaxBytes uint64 // journal byte bound (0 = journal default)
}

// LeaseAcquire requests the single-writer emission lease (see
// KindLeaseAcquire).
type LeaseAcquire struct {
	Holder    uint64
	TTLMillis uint64
}

// LeaseRenew extends a held lease and commits the holder's emission
// boundary (see KindLeaseRenew). TTLMillis zero releases the lease.
type LeaseRenew struct {
	Holder      uint64
	Epoch       uint64
	TTLMillis   uint64
	EmittedUpTo uint64
	Count       uint64
}

// LeaseFence is the lease server's arbitration answer (see
// KindLeaseFence).
type LeaseFence struct {
	Granted     bool
	Holder      uint64
	Epoch       uint64
	EmittedUpTo uint64 // last committed emission boundary
	Count       uint64 // matches delivered at that boundary
	LeftMillis  uint64 // on denial: how long the current grant has left
}

// Handover asks a standby process for its mirrored state (see
// KindHandover).
type Handover struct {
	Epoch uint64 // the successor's fencing epoch (logging/auditing)
}

// HandoverState is the handover header (see KindHandoverState): the
// mirror's replication watermarks and emission state, the topology
// tables, and the number of retained-journal ReplCut frames that follow
// on the same connection.
type HandoverState struct {
	LastUpTo    uint64 // newest mirrored cut watermark
	LastCut     uint64 // newest mirrored cut ordinal
	EmittedUpTo uint64 // primary's last received emission boundary (E*)
	Count       uint64 // delivered count at that boundary (N*)
	Cuts        uint64 // retained journal cuts following as ReplCut frames
	Events      uint64 // events mirrored in total (accounting)
	Finished    bool   // the primary stood the mirror down cleanly
	Dead        bool   // the mirror observed the primary die on the link
	Cause       string // how the death surfaced (truncated to 256 bytes)
	DetectedAt  uint64 // unix nanoseconds of the death observation
	Owner       []uint32
	Addrs       []string
}

func (Hello) kind() Kind          { return KindHello }
func (Assign) kind() Kind         { return KindAssign }
func (Batch) kind() Kind          { return KindBatch }
func (BatchView) kind() Kind      { return KindBatch }
func (Watermark) kind() Kind      { return KindWatermark }
func (TaggedMatch) kind() Kind    { return KindMatch }
func (TaggedMatchRaw) kind() Kind { return KindMatch }
func (Metrics) kind() Kind        { return KindMetrics }
func (Finish) kind() Kind         { return KindFinish }
func (Heartbeat) kind() Kind      { return KindHeartbeat }
func (Migrate) kind() Kind        { return KindMigrate }
func (MigrateAck) kind() Kind     { return KindMigrateAck }
func (ShardRoute) kind() Kind     { return KindShardRoute }
func (ShardStats) kind() Kind     { return KindShardStats }
func (PatternAdd) kind() Kind     { return KindPatternAdd }
func (PatternRemove) kind() Kind  { return KindPatternRemove }
func (ReplCut) kind() Kind        { return KindReplCut }
func (ReplState) kind() Kind      { return KindReplState }
func (Takeover) kind() Kind       { return KindTakeover }
func (Epoch) kind() Kind          { return KindEpoch }
func (LeaseAcquire) kind() Kind   { return KindLeaseAcquire }
func (LeaseRenew) kind() Kind     { return KindLeaseRenew }
func (LeaseFence) kind() Kind     { return KindLeaseFence }
func (Handover) kind() Kind       { return KindHandover }
func (HandoverState) kind() Kind  { return KindHandoverState }

// KindOf reports a frame's kind.
func KindOf(f Frame) Kind { return f.kind() }

// Fingerprint hashes a canonical textual rendering (FNV-1a) into the
// 64-bit signature the handshake compares; the cluster layer feeds it the
// pattern's String() plus the schema's type/attribute listing so an
// ingress and a node configured with different patterns refuse to pair.
func Fingerprint(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ---------------------------------------------------------------------------
// Encoding

// Append encodes one frame (length prefix included) onto dst.
func Append(dst []byte, f Frame) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	dst = append(dst, byte(f.kind()))
	switch v := f.(type) {
	case Hello:
		dst = binary.AppendUvarint(dst, uint64(v.Version))
		dst = binary.AppendUvarint(dst, uint64(v.Shards))
		dst = binary.AppendUvarint(dst, v.PatternSig)
	case Assign:
		dst = binary.AppendUvarint(dst, uint64(v.Base))
		dst = binary.AppendUvarint(dst, uint64(v.Shards))
		dst = binary.AppendUvarint(dst, uint64(v.Total))
		dst = appendSchema(dst, v.Schema)
		dst = appendPattern(dst, v.Pattern)
		dst = binary.AppendUvarint(dst, uint64(v.PrimaryID))
		dst = binary.AppendUvarint(dst, uint64(v.PrimaryTenant))
		dst = binary.AppendUvarint(dst, uint64(len(v.Extra)))
		for _, e := range v.Extra {
			dst = binary.AppendUvarint(dst, uint64(e.ID))
			dst = binary.AppendUvarint(dst, uint64(e.Tenant))
			dst = appendPattern(dst, e.Pattern)
		}
		dst = binary.AppendUvarint(dst, uint64(len(v.Tenants)))
		for _, t := range v.Tenants {
			dst = binary.AppendUvarint(dst, uint64(t.Tenant))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.Budget.Rate))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.Budget.Burst))
		}
		dst = binary.AppendUvarint(dst, v.Epoch)
	case Batch:
		dst = binary.AppendUvarint(dst, v.UpTo)
		dst = binary.AppendUvarint(dst, uint64(len(v.Events)))
		var prevTS event.Time
		var prevSeq uint64
		for i := range v.Events {
			ev := &v.Events[i]
			dst = appendEventDelta(dst, ev, prevTS, prevSeq)
			prevTS, prevSeq = ev.TS, ev.Seq
		}
	case Watermark:
		dst = binary.AppendUvarint(dst, v.UpTo)
	case TaggedMatch:
		dst = binary.AppendUvarint(dst, uint64(v.Shard))
		dst = binary.AppendUvarint(dst, v.Seq)
		dst = binary.AppendUvarint(dst, uint64(v.Pattern))
		dst = appendMatch(dst, v.M)
	case TaggedMatchRaw:
		dst = binary.AppendUvarint(dst, uint64(v.Shard))
		dst = binary.AppendUvarint(dst, v.Seq)
		dst = binary.AppendUvarint(dst, uint64(v.Pattern))
		dst = append(dst, v.Body...)
	case Metrics:
		dst = binary.AppendUvarint(dst, uint64(v.Pattern))
		dst = appendMetrics(dst, &v.M)
		dst = binary.AppendUvarint(dst, uint64(len(v.Tenants)))
		for _, t := range v.Tenants {
			dst = binary.AppendUvarint(dst, uint64(t.Tenant))
			dst = binary.AppendUvarint(dst, t.Admitted)
			dst = binary.AppendUvarint(dst, t.Shed)
		}
	case Finish:
		// empty body
	case Heartbeat:
		dst = binary.AppendUvarint(dst, v.UpTo)
	case Migrate:
		dst = binary.AppendUvarint(dst, uint64(v.Shard))
		dst = binary.AppendUvarint(dst, v.SuppressUpTo)
		dst = binary.AppendUvarint(dst, v.ReplayUpTo)
	case MigrateAck:
		dst = binary.AppendUvarint(dst, uint64(v.Shard))
		dst = binary.AppendUvarint(dst, v.UpTo)
	case ShardRoute:
		dst = binary.AppendUvarint(dst, uint64(len(v.Owner)))
		for _, o := range v.Owner {
			dst = binary.AppendUvarint(dst, uint64(o))
		}
	case ShardStats:
		dst = binary.AppendUvarint(dst, uint64(len(v.Stats)))
		for _, s := range v.Stats {
			dst = binary.AppendUvarint(dst, uint64(s.Shard))
			dst = binary.AppendUvarint(dst, s.Events)
			dst = binary.AppendUvarint(dst, s.P99Nanos)
			dst = binary.AppendUvarint(dst, s.Cut)
		}
	case PatternAdd:
		dst = binary.AppendUvarint(dst, uint64(v.Entry.ID))
		dst = binary.AppendUvarint(dst, uint64(v.Entry.Tenant))
		dst = appendPattern(dst, v.Entry.Pattern)
	case PatternRemove:
		dst = binary.AppendUvarint(dst, uint64(v.ID))
	case ReplCut:
		dst = binary.AppendUvarint(dst, v.UpTo)
		dst = binary.AppendUvarint(dst, v.Cut)
		var flags byte
		if v.Final {
			flags |= 1
		}
		if v.Owner != nil {
			flags |= 2
		}
		if v.Addrs != nil {
			flags |= 4
		}
		dst = append(dst, flags)
		if v.Owner != nil {
			dst = binary.AppendUvarint(dst, uint64(len(v.Owner)))
			for _, o := range v.Owner {
				dst = binary.AppendUvarint(dst, uint64(o))
			}
		}
		if v.Addrs != nil {
			dst = binary.AppendUvarint(dst, uint64(len(v.Addrs)))
			for _, a := range v.Addrs {
				dst = appendString(dst, a)
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(v.Runs)))
		for _, run := range v.Runs {
			dst = binary.AppendUvarint(dst, uint64(run.Shard))
			dst = binary.AppendUvarint(dst, uint64(len(run.Events)))
			var prevTS event.Time
			var prevSeq uint64
			for i := range run.Events {
				ev := &run.Events[i]
				dst = appendEventDelta(dst, ev, prevTS, prevSeq)
				prevTS, prevSeq = ev.TS, ev.Seq
			}
		}
	case ReplState:
		dst = binary.AppendUvarint(dst, v.EmittedUpTo)
		dst = binary.AppendUvarint(dst, v.Count)
	case Takeover:
		dst = binary.AppendUvarint(dst, v.Epoch)
		dst = binary.AppendUvarint(dst, v.Boundary)
		dst = binary.AppendUvarint(dst, v.Count)
	case Epoch:
		dst = binary.AppendUvarint(dst, v.Epoch)
		dst = binary.AppendVarint(dst, v.Window)
		dst = binary.AppendUvarint(dst, uint64(v.Slack))
		dst = binary.AppendUvarint(dst, v.MaxBytes)
	case LeaseAcquire:
		dst = binary.AppendUvarint(dst, v.Holder)
		dst = binary.AppendUvarint(dst, v.TTLMillis)
	case LeaseRenew:
		dst = binary.AppendUvarint(dst, v.Holder)
		dst = binary.AppendUvarint(dst, v.Epoch)
		dst = binary.AppendUvarint(dst, v.TTLMillis)
		dst = binary.AppendUvarint(dst, v.EmittedUpTo)
		dst = binary.AppendUvarint(dst, v.Count)
	case LeaseFence:
		var flags byte
		if v.Granted {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = binary.AppendUvarint(dst, v.Holder)
		dst = binary.AppendUvarint(dst, v.Epoch)
		dst = binary.AppendUvarint(dst, v.EmittedUpTo)
		dst = binary.AppendUvarint(dst, v.Count)
		dst = binary.AppendUvarint(dst, v.LeftMillis)
	case Handover:
		dst = binary.AppendUvarint(dst, v.Epoch)
	case HandoverState:
		dst = binary.AppendUvarint(dst, v.LastUpTo)
		dst = binary.AppendUvarint(dst, v.LastCut)
		dst = binary.AppendUvarint(dst, v.EmittedUpTo)
		dst = binary.AppendUvarint(dst, v.Count)
		dst = binary.AppendUvarint(dst, v.Cuts)
		dst = binary.AppendUvarint(dst, v.Events)
		var flags byte
		if v.Finished {
			flags |= 1
		}
		if v.Dead {
			flags |= 2
		}
		if v.Owner != nil {
			flags |= 4
		}
		if v.Addrs != nil {
			flags |= 8
		}
		dst = append(dst, flags)
		cause := v.Cause
		if len(cause) > maxNameBytes {
			cause = cause[:maxNameBytes]
		}
		dst = appendString(dst, cause)
		dst = binary.AppendUvarint(dst, v.DetectedAt)
		if v.Owner != nil {
			dst = binary.AppendUvarint(dst, uint64(len(v.Owner)))
			for _, o := range v.Owner {
				dst = binary.AppendUvarint(dst, uint64(o))
			}
		}
		if v.Addrs != nil {
			dst = binary.AppendUvarint(dst, uint64(len(v.Addrs)))
			for _, a := range v.Addrs {
				dst = appendString(dst, a)
			}
		}
	default:
		panic(fmt.Sprintf("wire: unencodable frame type %T", f))
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

func appendEvent(dst []byte, ev *event.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(ev.Type))
	dst = binary.AppendVarint(dst, int64(ev.TS))
	dst = binary.AppendUvarint(dst, ev.Seq)
	return appendAttrs(dst, ev.Attrs)
}

// appendEventDelta encodes an event against the previous event of its
// Batch frame: timestamps and sequence numbers are near-monotone within
// one cut, so signed deltas almost always fit a single varint byte.
// Subtraction wraps in two's complement, so arbitrary (even decreasing)
// inputs still round-trip exactly.
func appendEventDelta(dst []byte, ev *event.Event, prevTS event.Time, prevSeq uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(ev.Type))
	dst = binary.AppendVarint(dst, int64(ev.TS-prevTS))
	dst = binary.AppendVarint(dst, int64(ev.Seq-prevSeq))
	return appendAttrs(dst, ev.Attrs)
}

func appendAttrs(dst []byte, attrs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(attrs)))
	for _, a := range attrs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a))
	}
	return dst
}

// appendPattern encodes a compiled pattern (1 byte presence, then for OR
// the disjunct list, else one sub-pattern body).
func appendPattern(dst []byte, p *pattern.Pattern) []byte {
	if p == nil {
		return append(dst, 0)
	}
	if p.Op == pattern.Or {
		dst = append(dst, 2)
		dst = binary.AppendUvarint(dst, uint64(len(p.Subs)))
		for _, s := range p.Subs {
			dst = appendSubPattern(dst, s)
		}
		return dst
	}
	dst = append(dst, 1)
	return appendSubPattern(dst, p)
}

func appendSubPattern(dst []byte, p *pattern.Pattern) []byte {
	dst = append(dst, byte(p.Op))
	dst = binary.AppendVarint(dst, int64(p.Window))
	dst = binary.AppendUvarint(dst, uint64(len(p.Positions)))
	for _, pos := range p.Positions {
		dst = binary.AppendUvarint(dst, uint64(pos.Type))
		var flags byte
		if pos.Neg {
			flags |= 1
		}
		if pos.Kleene {
			flags |= 2
		}
		dst = append(dst, flags)
	}
	dst = binary.AppendUvarint(dst, uint64(len(p.Preds)))
	for _, pr := range p.Preds {
		dst = binary.AppendUvarint(dst, uint64(pr.L))
		dst = binary.AppendVarint(dst, int64(pr.R)) // Unary is -1
		dst = binary.AppendUvarint(dst, uint64(pr.AttrL))
		dst = binary.AppendUvarint(dst, uint64(pr.AttrR))
		dst = append(dst, byte(pr.Op))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(pr.C))
	}
	return dst
}

// appendSchema encodes the schema's type/attribute registry (1 byte
// presence, then the type list in registration order).
func appendSchema(dst []byte, s *event.Schema) []byte {
	if s == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(s.NumTypes()))
	for t := 0; t < s.NumTypes(); t++ {
		dst = appendString(dst, s.TypeName(t))
		attrs := s.Attrs(t)
		dst = binary.AppendUvarint(dst, uint64(len(attrs)))
		for _, a := range attrs {
			dst = appendString(dst, a)
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendMatchBody encodes a match's KindMatch body (everything after the
// shard/seq/pattern tag varints) onto dst and returns the extended slice. The bytes are
// exactly what Append(TaggedMatch{...}) would produce for the match, so a
// TaggedMatchRaw carrying them frames byte-identically. The match is read
// during the call and not retained — safe on a resolver scratch match
// under the owned-emit contract.
func AppendMatchBody(dst []byte, m *match.Match) []byte {
	return appendMatch(dst, m)
}

// DecodeMatchBody decodes a KindMatch body previously produced by
// AppendMatchBody into a freshly allocated match. Used by in-process
// transports that deliver TaggedMatchRaw frames by reference.
func DecodeMatchBody(b []byte) (*match.Match, error) {
	c := &cursor{b: b}
	m := c.match()
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("wire: match body has %d trailing bytes", len(b)-c.off)
	}
	return m, nil
}

func appendMatch(dst []byte, m *match.Match) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Events)))
	for _, ev := range m.Events {
		if ev == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = appendEvent(dst, ev)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Kleene)))
	for _, set := range m.Kleene {
		if set == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(set)))
		for _, ev := range set {
			dst = appendEvent(dst, ev)
		}
	}
	return dst
}

func appendMetrics(dst []byte, m *engine.Metrics) []byte {
	for _, u := range []uint64{
		m.Events, m.Matches, m.LateDropped, m.EventsArrived, m.EventsShed,
		m.QueueDropped, m.DecisionCalls, m.PlanGenerations, m.Reoptimizations,
		m.PMCreated, m.PredEvals,
	} {
		dst = binary.AppendUvarint(dst, u)
	}
	for _, d := range []time.Duration{m.DecisionTime, m.PlanTime, m.StatTime} {
		dst = binary.AppendVarint(dst, int64(d))
	}
	dst = binary.AppendVarint(dst, int64(m.PeakPMs))
	dst = appendQuantile(dst, &m.QueueWait)
	dst = appendQuantile(dst, &m.DetectTime)
	return dst
}

func appendQuantile(dst []byte, q *stats.Quantile) []byte {
	dst = binary.AppendUvarint(dst, q.Count())
	s := q.Samples()
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	for _, v := range s {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// ---------------------------------------------------------------------------
// Decoding

// ErrShort reports that the buffer ends before one whole frame; stream
// readers treat it as "need more data", not corruption.
var ErrShort = errors.New("wire: short buffer")

// cursor walks a frame body, latching the first error.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail("truncated or overlong varint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail("truncated or overlong varint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) u8() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.fail("truncated byte at offset %d", c.off)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) f64() float64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.fail("truncated float at offset %d", c.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v
}

// count reads a length-like uvarint and validates it against a cap and
// the bytes actually left in the frame (minSize per element), so a
// corrupt count can neither overflow a structural limit nor force an
// allocation much larger than the frame that claims it.
func (c *cursor) count(limit uint64, minSize int, what string) int {
	v := c.uvarint()
	if c.err != nil {
		return 0
	}
	if v > limit {
		c.fail("%s count %d exceeds cap %d", what, v, limit)
		return 0
	}
	if v*uint64(minSize) > uint64(len(c.b)-c.off) {
		c.fail("%s count %d exceeds remaining frame bytes", what, v)
		return 0
	}
	return int(v)
}

// Decode parses one frame from the head of b, returning the frame and the
// number of bytes consumed. A buffer ending before one whole frame
// returns ErrShort (possibly wrapped); anything structurally invalid
// returns a descriptive error.
func Decode(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return nil, 0, ErrShort
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 1 || n > MaxFrame {
		return nil, 0, fmt.Errorf("wire: frame length %d out of range [1, %d]", n, MaxFrame)
	}
	if uint64(len(b)) < 4+uint64(n) {
		return nil, 0, fmt.Errorf("frame needs %d bytes, have %d: %w", 4+n, len(b), ErrShort)
	}
	payload := b[4 : 4+n]
	f, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return f, 4 + int(n), nil
}

func decodePayload(p []byte) (Frame, error) {
	c := &cursor{b: p, off: 1}
	var f Frame
	switch Kind(p[0]) {
	case KindHello:
		f = Hello{
			Version:    uint32(c.uvarint()),
			Shards:     uint32(c.uvarint()),
			PatternSig: c.uvarint(),
		}
	case KindAssign:
		v := Assign{
			Base:   uint32(c.uvarint()),
			Shards: uint32(c.uvarint()),
			Total:  uint32(c.uvarint()),
		}
		v.Pattern, v.Schema = c.patternAndSchema()
		v.PrimaryID = uint32(c.uvarint())
		v.PrimaryTenant = uint32(c.uvarint())
		ne := c.count(maxPatternEntries, 3, "pattern entry")
		for i := 0; i < ne && c.err == nil; i++ {
			v.Extra = append(v.Extra, c.patternEntry(v.Schema))
		}
		nt := c.count(maxTenantEntries, 17, "tenant budget")
		for i := 0; i < nt && c.err == nil; i++ {
			v.Tenants = append(v.Tenants, TenantBudgetEntry{
				Tenant: uint32(c.uvarint()),
				Budget: shed.TenantBudget{Rate: c.f64(), Burst: c.f64()},
			})
		}
		v.Epoch = c.uvarint()
		f = v
	case KindBatch:
		v := Batch{UpTo: c.uvarint()}
		n := c.count(maxBatchEvents, 4, "batch event")
		if n > 0 {
			v.Events = make([]event.Event, n)
			var prevTS event.Time
			var prevSeq uint64
			for i := 0; i < n && c.err == nil; i++ {
				v.Events[i] = c.eventDelta(prevTS, prevSeq)
				prevTS, prevSeq = v.Events[i].TS, v.Events[i].Seq
			}
		}
		f = v
	case KindWatermark:
		f = Watermark{UpTo: c.uvarint()}
	case KindMatch:
		v := TaggedMatch{Shard: uint32(c.uvarint()), Seq: c.uvarint(), Pattern: uint32(c.uvarint())}
		v.M = c.match()
		f = v
	case KindMetrics:
		v := Metrics{Pattern: uint32(c.uvarint())}
		v.M = c.metrics()
		nt := c.count(maxTenantEntries, 3, "tenant stat")
		for i := 0; i < nt && c.err == nil; i++ {
			v.Tenants = append(v.Tenants, shed.TenantStat{
				Tenant:   uint32(c.uvarint()),
				Admitted: c.uvarint(),
				Shed:     c.uvarint(),
			})
		}
		f = v
	case KindFinish:
		f = Finish{}
	case KindHeartbeat:
		f = Heartbeat{UpTo: c.uvarint()}
	case KindMigrate:
		f = Migrate{
			Shard:        uint32(c.uvarint()),
			SuppressUpTo: c.uvarint(),
			ReplayUpTo:   c.uvarint(),
		}
	case KindMigrateAck:
		f = MigrateAck{Shard: uint32(c.uvarint()), UpTo: c.uvarint()}
	case KindShardRoute:
		v := ShardRoute{}
		n := c.count(maxRouteShards, 1, "route owner")
		if n > 0 {
			v.Owner = make([]uint32, n)
			for i := 0; i < n && c.err == nil; i++ {
				v.Owner[i] = uint32(c.uvarint())
			}
		}
		f = v
	case KindShardStats:
		v := ShardStats{}
		n := c.count(maxShardStats, 4, "shard stat")
		if n > 0 {
			v.Stats = make([]ShardStat, n)
			for i := 0; i < n && c.err == nil; i++ {
				v.Stats[i] = ShardStat{
					Shard:    uint32(c.uvarint()),
					Events:   c.uvarint(),
					P99Nanos: c.uvarint(),
					Cut:      c.uvarint(),
				}
			}
		}
		f = v
	case KindPatternAdd:
		v := PatternAdd{Entry: c.patternEntry(nil)}
		f = v
	case KindPatternRemove:
		f = PatternRemove{ID: uint32(c.uvarint())}
	case KindReplCut:
		v := ReplCut{UpTo: c.uvarint(), Cut: c.uvarint()}
		flags := c.u8()
		if c.err == nil && flags&^byte(7) != 0 {
			c.fail("repl-cut flags %#x unknown", flags)
		}
		v.Final = flags&1 != 0
		if flags&2 != 0 {
			n := c.count(maxRouteShards, 1, "repl owner")
			v.Owner = make([]uint32, n)
			for i := 0; i < n && c.err == nil; i++ {
				v.Owner[i] = uint32(c.uvarint())
			}
		}
		if flags&4 != 0 {
			n := c.count(maxNodeAddrs, 1, "repl addr")
			v.Addrs = make([]string, n)
			for i := 0; i < n && c.err == nil; i++ {
				v.Addrs[i] = c.str("repl addr")
			}
		}
		nr := c.count(maxReplRuns, 2, "repl run")
		for i := 0; i < nr && c.err == nil; i++ {
			run := ReplRun{Shard: uint32(c.uvarint())}
			ne := c.count(maxBatchEvents, 4, "repl event")
			if ne > 0 {
				run.Events = make([]event.Event, ne)
				var prevTS event.Time
				var prevSeq uint64
				for j := 0; j < ne && c.err == nil; j++ {
					run.Events[j] = c.eventDelta(prevTS, prevSeq)
					prevTS, prevSeq = run.Events[j].TS, run.Events[j].Seq
				}
			}
			v.Runs = append(v.Runs, run)
		}
		f = v
	case KindReplState:
		f = ReplState{EmittedUpTo: c.uvarint(), Count: c.uvarint()}
	case KindTakeover:
		f = Takeover{Epoch: c.uvarint(), Boundary: c.uvarint(), Count: c.uvarint()}
	case KindEpoch:
		f = Epoch{
			Epoch:    c.uvarint(),
			Window:   c.varint(),
			Slack:    uint32(c.uvarint()),
			MaxBytes: c.uvarint(),
		}
	case KindLeaseAcquire:
		f = LeaseAcquire{Holder: c.uvarint(), TTLMillis: c.uvarint()}
	case KindLeaseRenew:
		f = LeaseRenew{
			Holder:      c.uvarint(),
			Epoch:       c.uvarint(),
			TTLMillis:   c.uvarint(),
			EmittedUpTo: c.uvarint(),
			Count:       c.uvarint(),
		}
	case KindLeaseFence:
		flags := c.u8()
		if c.err == nil && flags&^byte(1) != 0 {
			c.fail("lease-fence flags %#x unknown", flags)
		}
		f = LeaseFence{
			Granted:     flags&1 != 0,
			Holder:      c.uvarint(),
			Epoch:       c.uvarint(),
			EmittedUpTo: c.uvarint(),
			Count:       c.uvarint(),
			LeftMillis:  c.uvarint(),
		}
	case KindHandover:
		f = Handover{Epoch: c.uvarint()}
	case KindHandoverState:
		v := HandoverState{
			LastUpTo:    c.uvarint(),
			LastCut:     c.uvarint(),
			EmittedUpTo: c.uvarint(),
			Count:       c.uvarint(),
			Cuts:        c.uvarint(),
			Events:      c.uvarint(),
		}
		flags := c.u8()
		if c.err == nil && flags&^byte(15) != 0 {
			c.fail("handover-state flags %#x unknown", flags)
		}
		v.Finished = flags&1 != 0
		v.Dead = flags&2 != 0
		v.Cause = c.str("handover cause")
		v.DetectedAt = c.uvarint()
		if flags&4 != 0 {
			n := c.count(maxRouteShards, 1, "handover owner")
			v.Owner = make([]uint32, n)
			for i := 0; i < n && c.err == nil; i++ {
				v.Owner[i] = uint32(c.uvarint())
			}
		}
		if flags&8 != 0 {
			n := c.count(maxNodeAddrs, 1, "handover addr")
			v.Addrs = make([]string, n)
			for i := 0; i < n && c.err == nil; i++ {
				v.Addrs[i] = c.str("handover addr")
			}
		}
		f = v
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", p[0])
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(p) {
		return nil, fmt.Errorf("wire: %s frame has %d trailing bytes", Kind(p[0]), len(p)-c.off)
	}
	return f, nil
}

func (c *cursor) event() event.Event {
	ev := event.Event{
		Type: int(c.uvarint()),
		TS:   event.Time(c.varint()),
		Seq:  c.uvarint(),
	}
	c.attrs(&ev)
	return ev
}

// eventDelta decodes a Batch event whose timestamp and sequence number
// are deltas against the previous event of the frame (see
// appendEventDelta).
func (c *cursor) eventDelta(prevTS event.Time, prevSeq uint64) event.Event {
	ev := event.Event{Type: int(c.uvarint())}
	ev.TS = prevTS + event.Time(c.varint())
	ev.Seq = prevSeq + uint64(c.varint())
	c.attrs(&ev)
	return ev
}

func (c *cursor) attrs(ev *event.Event) {
	n := c.count(maxAttrs, 8, "attribute")
	if n > 0 {
		ev.Attrs = make([]float64, n)
		for i := range ev.Attrs {
			ev.Attrs[i] = c.f64()
		}
	}
}

func (c *cursor) str(what string) string {
	n := c.count(maxNameBytes, 1, what)
	if c.err != nil {
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// patternAndSchema decodes the shipped schema and pattern of an Assign
// body. The pattern is rebuilt through the pattern Builder,
// so the shipped structure passes the same validation a locally built
// pattern does (position/attribute ranges against the schema when one is
// shipped alongside).
func (c *cursor) patternAndSchema() (*pattern.Pattern, *event.Schema) {
	s := c.schema()
	p := c.pattern(s)
	return p, s
}

// patternEntry decodes one multi-pattern set entry. A nil schema (the
// PatternAdd path — the schema was pinned by the Assign handshake)
// skips type/attribute range validation, exactly like a schema-free
// Assign; structural validation still runs through the Builder. An
// entry without a pattern is invalid — an id with nothing to evaluate.
func (c *cursor) patternEntry(s *event.Schema) PatternEntry {
	e := PatternEntry{ID: uint32(c.uvarint()), Tenant: uint32(c.uvarint())}
	e.Pattern = c.pattern(s)
	if c.err == nil && e.Pattern == nil {
		c.fail("pattern entry %d has no pattern", e.ID)
	}
	return e
}

func (c *cursor) schema() *event.Schema {
	if c.u8() == 0 || c.err != nil {
		return nil
	}
	s := event.NewSchema()
	nt := c.count(maxSchemaTypes, 2, "schema type")
	for t := 0; t < nt && c.err == nil; t++ {
		name := c.str("type name")
		na := c.count(maxSchemaAttrs, 1, "schema attribute")
		attrs := make([]string, 0, na)
		for a := 0; a < na && c.err == nil; a++ {
			attrs = append(attrs, c.str("attribute name"))
		}
		if c.err != nil {
			return nil
		}
		if _, err := s.AddType(name, attrs...); err != nil {
			c.fail("shipped schema: %v", err)
			return nil
		}
	}
	return s
}

func (c *cursor) pattern(s *event.Schema) *pattern.Pattern {
	switch c.u8() {
	case 0:
		return nil
	case 1:
		return c.subPattern(s)
	case 2:
		ns := c.count(maxSubPatterns, 4, "sub-pattern")
		subs := make([]*pattern.Pattern, 0, ns)
		for i := 0; i < ns && c.err == nil; i++ {
			subs = append(subs, c.subPattern(s))
		}
		if c.err != nil {
			return nil
		}
		p, err := pattern.NewOr(subs...)
		if err != nil {
			c.fail("shipped pattern: %v", err)
			return nil
		}
		return p
	default:
		c.fail("bad pattern presence tag")
		return nil
	}
}

func (c *cursor) subPattern(s *event.Schema) *pattern.Pattern {
	op := pattern.Op(c.u8())
	if op != pattern.Seq && op != pattern.And {
		c.fail("shipped pattern: bad operator %d", op)
		return nil
	}
	b := pattern.NewBuilder(s, op, event.Time(c.varint()))
	np := c.count(maxPatPositions, 2, "pattern position")
	for i := 0; i < np && c.err == nil; i++ {
		pos := b.Event(int(c.uvarint()))
		flags := c.u8()
		if flags&1 != 0 {
			b.Negate(pos)
		}
		if flags&2 != 0 {
			b.Kleene(pos)
		}
	}
	npr := c.count(maxPatPreds, 13, "pattern predicate")
	for i := 0; i < npr && c.err == nil; i++ {
		b.WherePred(pattern.Pred{
			L:     int(c.uvarint()),
			R:     int(c.varint()),
			AttrL: int(c.uvarint()),
			AttrR: int(c.uvarint()),
			Op:    pattern.CmpOp(c.u8()),
			C:     c.f64(),
		})
	}
	if c.err != nil {
		return nil
	}
	p, err := b.Build()
	if err != nil {
		c.fail("shipped pattern: %v", err)
		return nil
	}
	return p
}

func (c *cursor) match() *match.Match {
	m := &match.Match{}
	np := c.count(maxPositions, 1, "match position")
	if np > 0 {
		m.Events = make([]*event.Event, np)
		for i := 0; i < np && c.err == nil; i++ {
			if c.u8() == 1 {
				ev := c.event()
				m.Events[i] = &ev
			}
		}
	}
	nk := c.count(maxPositions, 1, "kleene position")
	if nk > 0 {
		m.Kleene = make([][]*event.Event, nk)
		for i := 0; i < nk && c.err == nil; i++ {
			if c.u8() != 1 {
				continue
			}
			n := c.count(maxKleene, 4, "kleene event")
			set := make([]*event.Event, 0, min(n, 1024))
			for j := 0; j < n && c.err == nil; j++ {
				ev := c.event()
				set = append(set, &ev)
			}
			m.Kleene[i] = set
		}
	}
	return m
}

func (c *cursor) metrics() engine.Metrics {
	var m engine.Metrics
	for _, u := range []*uint64{
		&m.Events, &m.Matches, &m.LateDropped, &m.EventsArrived, &m.EventsShed,
		&m.QueueDropped, &m.DecisionCalls, &m.PlanGenerations, &m.Reoptimizations,
		&m.PMCreated, &m.PredEvals,
	} {
		*u = c.uvarint()
	}
	m.DecisionTime = time.Duration(c.varint())
	m.PlanTime = time.Duration(c.varint())
	m.StatTime = time.Duration(c.varint())
	m.PeakPMs = int(c.varint())
	m.QueueWait = c.quantile()
	m.DetectTime = c.quantile()
	return m
}

func (c *cursor) quantile() stats.Quantile {
	count := c.uvarint()
	n := c.count(maxSamples, 8, "quantile sample")
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = c.f64()
	}
	if c.err != nil {
		return stats.Quantile{}
	}
	return stats.RestoreQuantile(count, samples)
}

// ---------------------------------------------------------------------------
// Stream framing

// Writer frames messages onto an io.Writer. Each Write issues exactly one
// underlying write call, so frames on a net.Conn are not interleaved as
// long as one goroutine owns the Writer.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write encodes and sends one frame.
func (w *Writer) Write(f Frame) error {
	w.buf = Append(w.buf[:0], f)
	_, err := w.w.Write(w.buf)
	return err
}

// Reader decodes frames from an io.Reader. A clean end of stream at a
// frame boundary returns io.EOF; a stream ending mid-frame returns
// io.ErrUnexpectedEOF.
type Reader struct {
	r    io.Reader
	head [4]byte
	buf  []byte

	// Zero-copy batch decode state (SetDecodeArena).
	arena *match.Arena
	evs   []*event.Event
	spans []event.Span
	view  BatchView
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// SetDecodeArena switches the Reader to zero-copy batch decoding: Batch
// frames are decoded directly into a's chunks (each event materialized
// once, its attribute values written in place into the chunk's flat
// buffer) and returned as *BatchView frames instead of Batch. All other
// frame kinds are unaffected. The arena must run with recycling off —
// the Reader hands out pointers into it whose lifetime it does not track
// — unless the caller itself bounds every decoded pointer's lifetime
// (drops all references before each Release), as the allocation tests
// do. A nil arena restores the copying decode.
func (r *Reader) SetDecodeArena(a *match.Arena) { r.arena = a }

// Read decodes the next frame.
func (r *Reader) Read() (Frame, error) {
	if _, err := io.ReadFull(r.r, r.head[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(r.head[:])
	if n < 1 || n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d out of range [1, %d]", n, MaxFrame)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if r.arena != nil && Kind(r.buf[0]) == KindBatch {
		return r.decodeBatchInto(r.buf)
	}
	return decodePayload(r.buf)
}

// decodeBatchInto is the zero-copy KindBatch decode: every event is
// allocated in place in the Reader's arena (match.Arena.Alloc) and its
// delta-coded fields and attribute values are written straight into the
// chunk slot — no intermediate event slice exists. Consecutive events
// sharing a type and attribute stride whose blocks land back to back in
// one chunk become one event.Span, so the returned BatchView partitions
// the batch into columnar runs as a free by-product of decoding.
func (r *Reader) decodeBatchInto(p []byte) (Frame, error) {
	c := &cursor{b: p, off: 1}
	r.view = BatchView{UpTo: c.uvarint()}
	n := c.count(maxBatchEvents, 4, "batch event")
	if cap(r.evs) < n {
		r.evs = make([]*event.Event, n)
	}
	evs := r.evs[:n]
	spans := r.spans[:0]
	var prevTS event.Time
	var prevSeq uint64
	prevOff, prevStride, prevType := 0, -1, -1
	for i := 0; i < n && c.err == nil; i++ {
		typ := int(c.uvarint())
		ts := prevTS + event.Time(c.varint())
		seq := prevSeq + uint64(c.varint())
		na := c.count(maxAttrs, 8, "attribute")
		if c.err != nil {
			break
		}
		ev, off := r.arena.Alloc(typ, ts, seq, na)
		for k := 0; k < na && c.err == nil; k++ {
			ev.Attrs[k] = c.f64()
		}
		evs[i] = ev
		prevTS, prevSeq = ts, seq
		if ns := len(spans); ns > 0 && typ == prevType && na == prevStride &&
			na > 0 && off == prevOff+prevStride {
			sp := &spans[ns-1]
			sp.N++
			sp.Attrs = sp.Attrs[:sp.N*na]
		} else {
			tail := r.arena.Tail()
			spans = append(spans, event.Span{
				Type: typ, First: i, N: 1, Stride: na,
				Attrs: tail[off : off+na],
			})
		}
		prevOff, prevStride, prevType = off, na, typ
	}
	r.spans = spans
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(p) {
		return nil, fmt.Errorf("wire: batch frame has %d trailing bytes", len(p)-c.off)
	}
	r.view.Events = evs
	r.view.Spans = spans
	return &r.view, nil
}
