package wire

import (
	"bytes"
	"testing"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/nfa"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// aliasBatch builds a Batch of n same-shape events of alternating types
// starting at ts, Seq continuing from seq0.
func aliasBatch(n int, ts event.Time, seq0 uint64) Batch {
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Type: i % 2,
			TS:   ts + event.Time(i),
			Seq:  seq0 + uint64(i),
			Attrs: []float64{
				float64(seq0) + float64(i),
				100 + float64(i%7),
			},
		}
	}
	return Batch{UpTo: seq0 + uint64(n) - 1, Events: evs}
}

// decodeOne round-trips one Batch through a Reader with the given decode
// arena and returns the view.
func decodeOne(t *testing.T, r *Reader, br *bytes.Reader, b Batch) *BatchView {
	t.Helper()
	br.Reset(Append(nil, b))
	f, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := f.(*BatchView)
	if !ok {
		t.Fatalf("Read returned %T, want *BatchView", f)
	}
	return v
}

// TestDecodeArenaReleaseInFlight pins the decode-side half of the
// ownership contract: releasing the decode arena behind a time horizon
// while pointers to earlier decoded batches are still in flight must
// not disturb them — with recycling off (the wire contract), Release
// only unpins chunks, and anything still referenced lives on through
// the GC with its values intact.
func TestDecodeArenaReleaseInFlight(t *testing.T) {
	var arena match.Arena // zero value: recycling off
	br := bytes.NewReader(nil)
	r := NewReader(br)
	r.SetDecodeArena(&arena)

	const n = 300 // > one chunk, so Release has a whole chunk to drop
	b1 := aliasBatch(n, 1000, 1)
	v1 := decodeOne(t, r, br, b1)

	// Hold the in-flight batch: copy the pointer slice (the view's
	// header is Reader scratch) and record the expected values.
	held := append([]*event.Event(nil), v1.Events...)
	want := b1.Events

	// Decode a later batch and release everything before it, racing the
	// horizon past the held batch.
	b2 := aliasBatch(n, 5000, n+1)
	decodeOne(t, r, br, b2)
	before := arena.Live()
	arena.Release(5000)
	if arena.Live() >= before {
		t.Fatalf("Release(5000) dropped no chunks (live %d -> %d)", before, arena.Live())
	}

	for i, ev := range held {
		w := &want[i]
		if ev.Type != w.Type || ev.TS != w.TS || ev.Seq != w.Seq {
			t.Fatalf("held event %d header corrupted after Release: got %+v want %+v", i, *ev, *w)
		}
		for k := range w.Attrs {
			if ev.Attrs[k] != w.Attrs[k] {
				t.Fatalf("held event %d attr %d corrupted after Release: got %v want %v",
					i, k, ev.Attrs[k], w.Attrs[k])
			}
		}
	}
}

// TestDecodeArenaMigrationFreeze runs the §2.2 migration freeze over
// wire-decoded chunks: an external-events evaluator buffers pointers
// into the decode arena, SetEmitOnlyBefore freezes it mid-stream (the
// draining-evaluator transition), and the decode arena keeps releasing
// behind the horizon. The drained matches must still be correct — same
// match set as an unfrozen copying run restricted to the boundary — and
// their events must read back the decoded values even after every
// decode-arena chunk has been released.
func TestDecodeArenaMigrationFreeze(t *testing.T) {
	s := event.NewSchema()
	s.MustAddType("A", "x", "y")
	s.MustAddType("B", "x", "y")
	pb := pattern.NewBuilder(s, pattern.Seq, 1<<20)
	pb.Event(0)
	pb.Event(1)
	pat := pb.MustBuild()

	const n = 64
	b1 := aliasBatch(n, 1000, 1)
	b2 := aliasBatch(n, 2000, n+1)
	boundary := uint64(n + 1) // only matches touching batch 1 may emit

	// Reference: plain per-event interning run with the same emission
	// restriction.
	var wantKeys []string
	{
		g := nfa.New(pat, plan.NewOrderPlan([]int{0, 1}), func(m *match.Match) {
			wantKeys = append(wantKeys, string(m.Key()))
		})
		for _, b := range []Batch{b1, b2} {
			for i := range b.Events {
				g.Process(&b.Events[i])
			}
			if b.UpTo == uint64(n) {
				g.SetEmitOnlyBefore(boundary)
			}
		}
		g.Finish()
	}

	// Wire path: decode into an arena, feed the pointers to an
	// external-events evaluator, freeze at the batch boundary.
	var arena match.Arena
	br := bytes.NewReader(nil)
	r := NewReader(br)
	r.SetDecodeArena(&arena)
	var got []*match.Match
	g := nfa.New(pat, plan.NewOrderPlan([]int{0, 1}), func(m *match.Match) {
		// The evaluator owns emitted matches only during the callback;
		// copy the slice header, keeping the arena event pointers.
		got = append(got, &match.Match{Events: append([]*event.Event(nil), m.Events...)})
	})
	g.SetExternal(true)
	for _, b := range []Batch{b1, b2} {
		v := decodeOne(t, r, br, b)
		for _, ev := range v.Events {
			g.Process(ev)
		}
		if b.UpTo == uint64(n) {
			g.SetEmitOnlyBefore(boundary) // migration: freezes the evaluator arena
		}
	}
	g.Finish()
	arena.Release(1 << 30) // drop every decode chunk; matches keep them alive

	if len(got) != len(wantKeys) {
		t.Fatalf("frozen wire run emitted %d matches, reference %d", len(got), len(wantKeys))
	}
	for i, m := range got {
		if string(m.Key()) != wantKeys[i] {
			t.Fatalf("match %d diverged: got %s want %s", i, m.Key(), wantKeys[i])
		}
		for _, ev := range m.Events {
			if ev.Attrs[1] < 100 || ev.Attrs[1] > 106 {
				t.Fatalf("match %d holds corrupted attrs after full Release: %v", i, ev.Attrs)
			}
		}
	}
}

// TestReplayDecodeFreshArena pins the failover-replay contract: the
// journaled cut history re-sent to a successor decodes into the
// successor's own fresh arena, producing events value-identical to the
// failed node's but in distinct storage — nothing aliases the dead
// session. (The end-to-end version of this runs in internal/cluster's
// kill-matrix tests over loopback TCP.)
func TestReplayDecodeFreshArena(t *testing.T) {
	const n = 50
	cuts := []Batch{
		aliasBatch(n, 1000, 1),
		aliasBatch(n, 2000, n+1),
		aliasBatch(n, 3000, 2*n+1),
	}

	decodeAll := func() (*match.Arena, [][]*event.Event) {
		var arena match.Arena
		br := bytes.NewReader(nil)
		r := NewReader(br)
		r.SetDecodeArena(&arena)
		var out [][]*event.Event
		for _, b := range cuts {
			v := decodeOne(t, r, br, b)
			out = append(out, append([]*event.Event(nil), v.Events...))
		}
		return &arena, out
	}

	_, failed := decodeAll()    // the dead node's view of the history
	_, successor := decodeAll() // replay into a fresh arena

	for c := range cuts {
		for i := range cuts[c].Events {
			w, f, sc := &cuts[c].Events[i], failed[c][i], successor[c][i]
			if f == sc {
				t.Fatalf("cut %d event %d: successor aliases the failed node's arena slot", c, i)
			}
			if &f.Attrs[0] == &sc.Attrs[0] {
				t.Fatalf("cut %d event %d: successor attrs alias the failed node's chunk", c, i)
			}
			if sc.Type != w.Type || sc.TS != w.TS || sc.Seq != w.Seq {
				t.Fatalf("cut %d event %d: replay decoded %+v, journal holds %+v", c, i, *sc, *w)
			}
			for k := range w.Attrs {
				if sc.Attrs[k] != w.Attrs[k] {
					t.Fatalf("cut %d event %d attr %d: replay %v, journal %v", c, i, k, sc.Attrs[k], w.Attrs[k])
				}
			}
		}
	}
}
