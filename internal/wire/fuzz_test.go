package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode asserts the codec's crash-safety and consistency contract on
// arbitrary bytes:
//
//   - Decode never panics and never over-consumes the buffer;
//   - whatever Decode accepts, Append re-encodes into a frame that
//     decodes again to the same canonical bytes (decode∘encode is
//     idempotent — the varint layer may accept a non-minimal input
//     encoding once, but the re-encoding is a fixed point).
//
// CI runs this for a short smoke interval on every push (like the SASE
// parser fuzzer); longer runs are local.
func FuzzDecode(f *testing.F) {
	for _, fr := range frames() {
		f.Add(Append(nil, fr))
	}
	// Hand-made corrupt shapes from the unit tests.
	f.Add([]byte{0, 0, 0, 0})
	// v4 seeds: pattern-id-tagged match, pattern lifecycle frames.
	f.Add(Append(nil, PatternRemove{ID: 7}))
	f.Add(Append(nil, PatternAdd{Entry: PatternEntry{ID: 1}})) // invalid: no pattern
	f.Add([]byte{5, 0, 0, 0, byte(KindPatternAdd), 1, 0, 3})   // bad presence tag
	f.Add([]byte{1, 0, 0, 0, 99})
	f.Add([]byte{8, 0, 0, 0, byte(KindMatch), 0, 0xff, 0xff, 0xff, 0xff, 0x7f, 0})
	f.Add(append(Append(nil, Watermark{UpTo: 1}), Append(nil, Finish{})...))
	// v6 seeds: lease arbitration and mirror-handover frames, plus
	// corrupt shapes the flag validators must reject cleanly.
	f.Add(Append(nil, LeaseRenew{Holder: 1, Epoch: 2, TTLMillis: 2000, EmittedUpTo: 99, Count: 7}))
	f.Add(Append(nil, LeaseFence{Granted: true, Holder: 1, Epoch: 2}))
	f.Add(Append(nil, HandoverState{Dead: true, Cause: "x", Owner: []uint32{0}}))
	f.Add([]byte{2, 0, 0, 0, byte(KindLeaseFence), 0xfe})                         // unknown fence flags
	f.Add([]byte{8, 0, 0, 0, byte(KindHandoverState), 0, 0, 0, 0, 0, 0, 0xf0, 0}) // unknown handover flags

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<20 {
			return // linear decoder; keep fuzzing fast
		}
		fr, n, err := Decode(b)
		if err != nil {
			if fr != nil {
				t.Fatalf("Decode returned both frame %#v and error %v", fr, err)
			}
			return
		}
		if n < 5 || n > len(b) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(b))
		}
		enc := Append(nil, fr)
		fr2, n2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if enc2 := Append(nil, fr2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not a fixed point:\n 1st: %x\n 2nd: %x", enc, enc2)
		}
	})
}
