package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/shed"
	"acep/internal/stats"
)

// sampleSchema and samplePattern exercise the pattern-shipping payload of
// Assign frames: negation, Kleene, unary and binary predicates.
func sampleSchema() *event.Schema {
	s := event.NewSchema()
	s.MustAddType("A", "key", "v")
	s.MustAddType("B", "key", "v")
	s.MustAddType("C", "key")
	return s
}

func samplePattern(s *event.Schema) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, 300)
	a := b.Event(0)
	k := b.Event(1)
	b.Kleene(k)
	n := b.Event(2)
	b.Negate(n)
	c := b.Event(1)
	b.WhereEq(a, "key", c, "key")
	b.Where(a, "key", pattern.EQ, k, "key", 0)
	b.Where(a, "key", pattern.EQ, n, "key", 0)
	b.WhereConst(a, "v", pattern.GT, 0.5)
	return b.MustBuild()
}

// sampleEvent builds an event exercising varint edge shapes: type 0,
// negative-capable TS, large Seq, NaN and -0.0 attribute bit patterns.
func sampleEvent() event.Event {
	return event.Event{
		Type:  3,
		TS:    -17,
		Seq:   1<<40 + 9,
		Attrs: []float64{1.5, math.Copysign(0, -1), math.NaN(), -2.25e18},
	}
}

// frames is the table every round-trip test walks: at least one instance
// of every frame kind, including degenerate shapes.
func frames() []Frame {
	ev := sampleEvent()
	ev2 := event.Event{Type: 0, TS: 0, Seq: 1}
	var q stats.Quantile
	for i := 0; i < 2000; i++ {
		q.Add(float64(i % 97))
	}
	s := sampleSchema()
	p := samplePattern(s)
	orPat, err := pattern.NewOr(samplePattern(s), samplePattern(s))
	if err != nil {
		panic(err)
	}
	return []Frame{
		Hello{Version: Version, Shards: 4, PatternSig: 0xdeadbeefcafef00d},
		Hello{},
		Assign{Base: 6, Shards: 2, Total: 12},
		Assign{Base: 0, Shards: 4, Total: 4, Pattern: p, Schema: s},
		Assign{Base: 0, Total: 4, Pattern: orPat, Schema: s}, // empty join: shards arrive by Migrate
		Assign{ // v4: full multi-pattern set with tenant budgets
			Base: 0, Shards: 2, Total: 2, Pattern: p, Schema: s,
			PrimaryID: 1, PrimaryTenant: 9,
			Extra: []PatternEntry{
				{ID: 2, Tenant: 9, Pattern: samplePattern(s)},
				{ID: 7, Tenant: 0, Pattern: samplePattern(s)},
			},
			Tenants: []TenantBudgetEntry{
				{Tenant: 9, Budget: shed.TenantBudget{Rate: 125.5, Burst: 250}},
				{Tenant: 0, Budget: shed.TenantBudget{Rate: 1}},
			},
		},
		Batch{UpTo: 1 << 50},
		Batch{UpTo: 42, Events: []event.Event{ev, ev2}},
		Batch{Events: []event.Event{ev2}}, // events-only run of an open cut
		Heartbeat{UpTo: 77},
		Migrate{Shard: 9, SuppressUpTo: 1234, ReplayUpTo: 5678},
		Migrate{},
		MigrateAck{Shard: 9, UpTo: 5690},
		ShardRoute{Owner: []uint32{0, 2, 1, math.MaxUint32, 2}},
		ShardRoute{},
		ShardStats{Stats: []ShardStat{
			{Shard: 0, Events: 1 << 44, P99Nanos: 125_000, Cut: 1 << 52},
			{Shard: 3, Events: 7, P99Nanos: 0},
		}},
		ShardStats{},
		Watermark{UpTo: math.MaxUint64},
		TaggedMatch{Shard: 3, Seq: 7, Pattern: 42, M: &match.Match{Events: []*event.Event{&ev, nil, &ev2}}},
		TaggedMatch{Seq: math.MaxUint64, M: &match.Match{
			Events: []*event.Event{&ev, nil, nil},
			Kleene: [][]*event.Event{nil, {&ev2, &ev}, nil},
		}},
		TaggedMatch{Seq: 0, M: &match.Match{}},
		Metrics{M: engine.Metrics{
			Events: 100, Matches: 3, LateDropped: 1, EventsArrived: 100,
			EventsShed: 7, QueueDropped: 2, DecisionCalls: 5, PlanGenerations: 4,
			Reoptimizations: 2, DecisionTime: 12 * time.Microsecond,
			PlanTime: 3 * time.Millisecond, StatTime: time.Second,
			PMCreated: 55, PredEvals: 1234, PeakPMs: 17,
			QueueWait: q,
		}},
		Metrics{},
		Metrics{Pattern: 12, M: engine.Metrics{Events: 5, Matches: 1},
			Tenants: []shed.TenantStat{
				{Tenant: 0, Admitted: 100, Shed: 3},
				{Tenant: 4, Admitted: 1 << 40},
			}},
		PatternAdd{Entry: PatternEntry{ID: 99, Tenant: 2, Pattern: samplePattern(s)}},
		PatternRemove{ID: 99},
		PatternRemove{},
		Assign{Base: 0, Shards: 2, Total: 4, Epoch: 3}, // v5: epoch-stamped session
		ReplCut{ // v5: replicated cut with topology tables
			UpTo:  1 << 30,
			Cut:   17,
			Owner: []uint32{0, 1, 1, 0},
			Addrs: []string{"127.0.0.1:9001", "", "[::1]:40000"},
			Runs: []ReplRun{
				{Shard: 0, Events: []event.Event{ev, ev2}},
				{Shard: 3},
			},
		},
		ReplCut{UpTo: 512, Cut: 1, Runs: []ReplRun{{Shard: 1, Events: []event.Event{ev2}}}},
		ReplCut{UpTo: 1 << 52, Cut: 1 << 20, Final: true}, // stream-ending marker
		ReplState{EmittedUpTo: 1 << 40, Count: 12345},
		ReplState{},
		Takeover{Epoch: 2, Boundary: 768, Count: 99},
		Takeover{},
		Epoch{Epoch: 1},
		Epoch{Epoch: 3, Window: 5000, Slack: 4, MaxBytes: 1 << 28}, // v6: self-configuring standby
		Epoch{Epoch: 2, Window: -1},
		LeaseAcquire{Holder: 1, TTLMillis: 2000},
		LeaseAcquire{},
		LeaseRenew{Holder: 1, Epoch: 4, TTLMillis: 2000, EmittedUpTo: 1 << 33, Count: 777},
		LeaseRenew{Holder: 2, Epoch: 5}, // TTL 0: release
		LeaseFence{Granted: true, Holder: 1, Epoch: 4, EmittedUpTo: 1 << 33, Count: 777},
		LeaseFence{Holder: 2, Epoch: 9, LeftMillis: 1499}, // denial with remaining grant
		LeaseFence{},
		Handover{Epoch: 2},
		Handover{},
		HandoverState{ // v6: full mirror handover header
			LastUpTo: 1 << 30, LastCut: 255, EmittedUpTo: 1 << 29, Count: 4242,
			Cuts: 8, Events: 1 << 16,
			Dead: true, Cause: "replication link: read tcp: connection reset",
			DetectedAt: 1_700_000_000_000_000_000,
			Owner:      []uint32{1, 0, math.MaxUint32},
			Addrs:      []string{"127.0.0.1:9001", "[::1]:40000"},
		},
		HandoverState{Finished: true},
		HandoverState{},
		Finish{},
	}
}

// eqFrame compares frames for semantic equality (NaN attribute bits
// compare by bit pattern, quantiles by count and reservoir).
func eqFrame(t *testing.T, a, b Frame) bool {
	t.Helper()
	am, aok := a.(Metrics)
	bm, bok := b.(Metrics)
	if aok != bok {
		return false
	}
	if aok {
		// Quantile has unexported state; compare through its surface.
		if am.M.QueueWait.Count() != bm.M.QueueWait.Count() ||
			am.M.DetectTime.Count() != bm.M.DetectTime.Count() ||
			!reflect.DeepEqual(am.M.QueueWait.Samples(), bm.M.QueueWait.Samples()) ||
			!reflect.DeepEqual(am.M.DetectTime.Samples(), bm.M.DetectTime.Samples()) {
			return false
		}
		am.M.QueueWait, bm.M.QueueWait = stats.Quantile{}, stats.Quantile{}
		am.M.DetectTime, bm.M.DetectTime = stats.Quantile{}, stats.Quantile{}
		return reflect.DeepEqual(am, bm)
	}
	// NaNs: compare canonical re-encodings instead of raw values.
	return bytes.Equal(Append(nil, a), Append(nil, b))
}

// TestRoundTrip: every frame kind encodes and decodes back to itself,
// both via the byte API and the stream Reader/Writer.
func TestRoundTrip(t *testing.T) {
	for _, f := range frames() {
		b := Append(nil, f)
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", KindOf(f), err)
		}
		if n != len(b) {
			t.Fatalf("%s: consumed %d of %d bytes", KindOf(f), n, len(b))
		}
		if !eqFrame(t, f, got) {
			t.Fatalf("%s: round-trip mismatch:\n in: %#v\nout: %#v", KindOf(f), f, got)
		}
	}
}

// TestStreamRoundTrip: all frames written back-to-back through a Writer
// decode in order through a Reader, ending in clean io.EOF.
func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	all := frames()
	for _, f := range all {
		if err := w.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range all {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !eqFrame(t, want, got) {
			t.Fatalf("frame %d (%s): mismatch", i, KindOf(want))
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestDecodeTruncated: every proper prefix of every encoded frame is
// rejected — with ErrShort when the length prefix promises more, with a
// descriptive error when the body lies about its own structure.
func TestDecodeTruncated(t *testing.T) {
	for _, f := range frames() {
		b := Append(nil, f)
		for cut := 0; cut < len(b); cut++ {
			if _, n, err := Decode(b[:cut]); err == nil {
				t.Fatalf("%s truncated to %d/%d bytes decoded (consumed %d)", KindOf(f), cut, len(b), n)
			}
		}
	}
}

// TestReaderTruncated: a stream ending mid-frame reports
// io.ErrUnexpectedEOF, distinguishing it from a clean close.
func TestReaderTruncated(t *testing.T) {
	b := Append(nil, Batch{UpTo: 9, Events: []event.Event{sampleEvent()}})
	for _, cut := range []int{1, 3, 4, 5, len(b) - 1} {
		r := NewReader(bytes.NewReader(b[:cut]))
		if _, err := r.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestDecodeCorrupt: structurally invalid frames are rejected with
// wire-prefixed errors and never panic.
func TestDecodeCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"zero length":        {0, 0, 0, 0},
		"oversized length":   {0xff, 0xff, 0xff, 0xff, byte(KindFinish)},
		"unknown kind":       Append(nil, Finish{})[:4:4],
		"overlong varint":    {10, 0, 0, 0, byte(KindWatermark), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		"event count lie":    {3, 0, 0, 0, byte(KindBatch), 5, 200},
		"attr count lie":     {7, 0, 0, 0, byte(KindBatch), 5, 1, 0, 0, 1, 250},
		"kleene count lie":   {6, 0, 0, 0, byte(KindMatch), 0, 0, 1, 1, 99},
		"sample count bomb":  {8, 0, 0, 0, byte(KindMetrics), 0, 0, 0, 0, 0, 0, 0},
		"position cap break": {8, 0, 0, 0, byte(KindMatch), 0, 0xff, 0xff, 0xff, 0xff, 0x7f, 0},
	}
	cases["unknown kind"] = append(cases["unknown kind"], 99)
	// A PatternAdd whose entry ships no pattern is structurally invalid:
	// an id with nothing to evaluate.
	cases["empty pattern add"] = Append(nil, PatternAdd{Entry: PatternEntry{ID: 3}})
	for name, b := range cases {
		f, _, err := Decode(b)
		if err == nil {
			t.Errorf("%s: decoded %#v, want error", name, f)
		}
	}
	// "trailing bytes" needs its length prefix to cover the extra byte.
	b := Append(nil, Watermark{UpTo: 1})
	b = append(b, 0xcc)
	b[0]++ // grow the declared payload length over the junk byte
	if _, _, err := Decode(b); err == nil {
		t.Error("trailing byte inside declared length accepted")
	}
}

// TestBatchDeltaCompact: on a realistic cut (monotone timestamps,
// consecutive sequence numbers) the delta encoding spends one byte per
// timestamp and one per sequence number; the absolute v1 layout needed
// up to five of each. The frame must stay well under the absolute size.
func TestBatchDeltaCompact(t *testing.T) {
	evs := make([]event.Event, 1000)
	absolute := 0
	for i := range evs {
		evs[i] = event.Event{
			Type:  i % 5,
			TS:    event.Time(1 << 40),
			Seq:   uint64(1<<50 + i),
			Attrs: []float64{float64(i)},
		}
		absolute = len(appendEvent(nil, &evs[i]))
	}
	b := Append(nil, Batch{UpTo: 1<<50 + 1000, Events: evs})
	perEvent := (len(b) - 16) / len(evs)
	if perEvent >= absolute {
		t.Fatalf("delta batch spends %d bytes/event, absolute layout %d", perEvent, absolute)
	}
	// And it still round-trips exactly.
	f, _, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.(Batch); !reflect.DeepEqual(got.Events, evs) {
		t.Fatal("delta batch round-trip mismatch")
	}
}

// TestBatchDeltaNonMonotone: the codec must round-trip batches whose
// timestamps or sequence numbers go backwards (the deltas are signed and
// wrap in two's complement), even though the cluster never produces them.
func TestBatchDeltaNonMonotone(t *testing.T) {
	evs := []event.Event{
		{Type: 1, TS: 100, Seq: math.MaxUint64},
		{Type: 2, TS: -50, Seq: 3},
		{Type: 0, TS: -50, Seq: 1},
	}
	b := Append(nil, Batch{UpTo: 0, Events: evs})
	f, n, err := Decode(b)
	if err != nil || n != len(b) {
		t.Fatalf("decode: %v (consumed %d/%d)", err, n, len(b))
	}
	if got := f.(Batch); !reflect.DeepEqual(got.Events, evs) {
		t.Fatalf("round-trip mismatch: %#v", f)
	}
}

// TestPatternShipping: a shipped pattern and schema rebuild into
// semantically identical structures — same textual rendering, same
// type/attribute registry — and an Assign without payload stays nil.
func TestPatternShipping(t *testing.T) {
	s := sampleSchema()
	p := samplePattern(s)
	f, _, err := Decode(Append(nil, Assign{Base: 1, Total: 3, Pattern: p, Schema: s}))
	if err != nil {
		t.Fatal(err)
	}
	got := f.(Assign)
	if got.Pattern == nil || got.Pattern.String() != p.String() {
		t.Fatalf("shipped pattern renders %q, want %q", got.Pattern, p)
	}
	if got.Schema == nil || got.Schema.NumTypes() != s.NumTypes() {
		t.Fatal("shipped schema lost types")
	}
	for i := 0; i < s.NumTypes(); i++ {
		if got.Schema.TypeName(i) != s.TypeName(i) ||
			!reflect.DeepEqual(got.Schema.Attrs(i), s.Attrs(i)) {
			t.Fatalf("type %d: %q/%v, want %q/%v", i,
				got.Schema.TypeName(i), got.Schema.Attrs(i), s.TypeName(i), s.Attrs(i))
		}
	}

	f, _, err = Decode(Append(nil, Assign{Base: 1, Total: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.(Assign); got.Pattern != nil || got.Schema != nil {
		t.Fatal("payload-free assign grew a pattern or schema")
	}

	// A shipped pattern that fails builder validation (predicate position
	// out of range) is a decode error, not a bad pattern object.
	bad := samplePattern(s)
	bad.Preds = append([]pattern.Pred(nil), bad.Preds...)
	bad.Preds[0].L = 99
	if _, _, err := Decode(Append(nil, Assign{Pattern: bad, Schema: s})); err == nil {
		t.Fatal("invalid shipped pattern accepted")
	}
}

// TestFingerprint: stable, input-sensitive.
func TestFingerprint(t *testing.T) {
	a := Fingerprint("SEQ(A,B,C)")
	if a != Fingerprint("SEQ(A,B,C)") {
		t.Fatal("fingerprint not deterministic")
	}
	if a == Fingerprint("SEQ(A,B,D)") || a == Fingerprint("") {
		t.Fatal("fingerprint collisions on trivially different inputs")
	}
}
