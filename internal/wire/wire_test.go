package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/stats"
)

// sampleEvent builds an event exercising varint edge shapes: type 0,
// negative-capable TS, large Seq, NaN and -0.0 attribute bit patterns.
func sampleEvent() event.Event {
	return event.Event{
		Type:  3,
		TS:    -17,
		Seq:   1<<40 + 9,
		Attrs: []float64{1.5, math.Copysign(0, -1), math.NaN(), -2.25e18},
	}
}

// frames is the table every round-trip test walks: at least one instance
// of every frame kind, including degenerate shapes.
func frames() []Frame {
	ev := sampleEvent()
	ev2 := event.Event{Type: 0, TS: 0, Seq: 1}
	var q stats.Quantile
	for i := 0; i < 2000; i++ {
		q.Add(float64(i % 97))
	}
	return []Frame{
		Hello{Version: Version, Shards: 4, PatternSig: 0xdeadbeefcafef00d},
		Hello{},
		Assign{Base: 6, Total: 12},
		Batch{UpTo: 1 << 50},
		Batch{UpTo: 42, Events: []event.Event{ev, ev2}},
		Watermark{UpTo: math.MaxUint64},
		TaggedMatch{Seq: 7, M: &match.Match{Events: []*event.Event{&ev, nil, &ev2}}},
		TaggedMatch{Seq: math.MaxUint64, M: &match.Match{
			Events: []*event.Event{&ev, nil, nil},
			Kleene: [][]*event.Event{nil, {&ev2, &ev}, nil},
		}},
		TaggedMatch{Seq: 0, M: &match.Match{}},
		Metrics{M: engine.Metrics{
			Events: 100, Matches: 3, LateDropped: 1, EventsArrived: 100,
			EventsShed: 7, QueueDropped: 2, DecisionCalls: 5, PlanGenerations: 4,
			Reoptimizations: 2, DecisionTime: 12 * time.Microsecond,
			PlanTime: 3 * time.Millisecond, StatTime: time.Second,
			PMCreated: 55, PredEvals: 1234, PeakPMs: 17,
			QueueWait: q,
		}},
		Metrics{},
		Finish{},
	}
}

// eqFrame compares frames for semantic equality (NaN attribute bits
// compare by bit pattern, quantiles by count and reservoir).
func eqFrame(t *testing.T, a, b Frame) bool {
	t.Helper()
	am, aok := a.(Metrics)
	bm, bok := b.(Metrics)
	if aok != bok {
		return false
	}
	if aok {
		// Quantile has unexported state; compare through its surface.
		if am.M.QueueWait.Count() != bm.M.QueueWait.Count() ||
			am.M.DetectTime.Count() != bm.M.DetectTime.Count() ||
			!reflect.DeepEqual(am.M.QueueWait.Samples(), bm.M.QueueWait.Samples()) ||
			!reflect.DeepEqual(am.M.DetectTime.Samples(), bm.M.DetectTime.Samples()) {
			return false
		}
		am.M.QueueWait, bm.M.QueueWait = stats.Quantile{}, stats.Quantile{}
		am.M.DetectTime, bm.M.DetectTime = stats.Quantile{}, stats.Quantile{}
		return reflect.DeepEqual(am, bm)
	}
	// NaNs: compare canonical re-encodings instead of raw values.
	return bytes.Equal(Append(nil, a), Append(nil, b))
}

// TestRoundTrip: every frame kind encodes and decodes back to itself,
// both via the byte API and the stream Reader/Writer.
func TestRoundTrip(t *testing.T) {
	for _, f := range frames() {
		b := Append(nil, f)
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", KindOf(f), err)
		}
		if n != len(b) {
			t.Fatalf("%s: consumed %d of %d bytes", KindOf(f), n, len(b))
		}
		if !eqFrame(t, f, got) {
			t.Fatalf("%s: round-trip mismatch:\n in: %#v\nout: %#v", KindOf(f), f, got)
		}
	}
}

// TestStreamRoundTrip: all frames written back-to-back through a Writer
// decode in order through a Reader, ending in clean io.EOF.
func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	all := frames()
	for _, f := range all {
		if err := w.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range all {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !eqFrame(t, want, got) {
			t.Fatalf("frame %d (%s): mismatch", i, KindOf(want))
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestDecodeTruncated: every proper prefix of every encoded frame is
// rejected — with ErrShort when the length prefix promises more, with a
// descriptive error when the body lies about its own structure.
func TestDecodeTruncated(t *testing.T) {
	for _, f := range frames() {
		b := Append(nil, f)
		for cut := 0; cut < len(b); cut++ {
			if _, n, err := Decode(b[:cut]); err == nil {
				t.Fatalf("%s truncated to %d/%d bytes decoded (consumed %d)", KindOf(f), cut, len(b), n)
			}
		}
	}
}

// TestReaderTruncated: a stream ending mid-frame reports
// io.ErrUnexpectedEOF, distinguishing it from a clean close.
func TestReaderTruncated(t *testing.T) {
	b := Append(nil, Batch{UpTo: 9, Events: []event.Event{sampleEvent()}})
	for _, cut := range []int{1, 3, 4, 5, len(b) - 1} {
		r := NewReader(bytes.NewReader(b[:cut]))
		if _, err := r.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestDecodeCorrupt: structurally invalid frames are rejected with
// wire-prefixed errors and never panic.
func TestDecodeCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"zero length":        {0, 0, 0, 0},
		"oversized length":   {0xff, 0xff, 0xff, 0xff, byte(KindFinish)},
		"unknown kind":       Append(nil, Finish{})[:4:4],
		"overlong varint":    {10, 0, 0, 0, byte(KindWatermark), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		"event count lie":    {3, 0, 0, 0, byte(KindBatch), 5, 200},
		"attr count lie":     {7, 0, 0, 0, byte(KindBatch), 5, 1, 0, 0, 1, 250},
		"kleene count lie":   {6, 0, 0, 0, byte(KindMatch), 0, 0, 1, 1, 99},
		"sample count bomb":  {8, 0, 0, 0, byte(KindMetrics), 0, 0, 0, 0, 0, 0, 0},
		"position cap break": {8, 0, 0, 0, byte(KindMatch), 0, 0xff, 0xff, 0xff, 0xff, 0x7f, 0},
	}
	cases["unknown kind"] = append(cases["unknown kind"], 99)
	for name, b := range cases {
		f, _, err := Decode(b)
		if err == nil {
			t.Errorf("%s: decoded %#v, want error", name, f)
		}
	}
	// "trailing bytes" needs its length prefix to cover the extra byte.
	b := Append(nil, Watermark{UpTo: 1})
	b = append(b, 0xcc)
	b[0]++ // grow the declared payload length over the junk byte
	if _, _, err := Decode(b); err == nil {
		t.Error("trailing byte inside declared length accepted")
	}
}

// TestFingerprint: stable, input-sensitive.
func TestFingerprint(t *testing.T) {
	a := Fingerprint("SEQ(A,B,C)")
	if a != Fingerprint("SEQ(A,B,C)") {
		t.Fatal("fingerprint not deterministic")
	}
	if a == Fingerprint("SEQ(A,B,D)") || a == Fingerprint("") {
		t.Fatal("fingerprint collisions on trivially different inputs")
	}
}
