package chaos

import (
	"errors"
	"io"
	"testing"
	"time"

	"acep/internal/wire"
)

// pipeConn is a minimal in-process frame pipe for exercising wrappers.
type pipeConn struct {
	out, in chan wire.Frame
}

func newPipe() (*pipeConn, *pipeConn) {
	ab := make(chan wire.Frame, 1024)
	ba := make(chan wire.Frame, 1024)
	return &pipeConn{out: ab, in: ba}, &pipeConn{out: ba, in: ab}
}

func (p *pipeConn) Send(f wire.Frame) error {
	p.out <- f
	return nil
}

func (p *pipeConn) Recv() (wire.Frame, error) {
	f, ok := <-p.in
	if !ok {
		return nil, io.EOF
	}
	return f, nil
}

func (p *pipeConn) Close() error {
	close(p.out)
	return nil
}

func wm(n uint64) wire.Frame { return wire.Watermark{UpTo: n} }

func drain(p *pipeConn) []wire.Frame {
	var got []wire.Frame
	for {
		select {
		case f, ok := <-p.in:
			if !ok {
				return got
			}
			got = append(got, f)
		default:
			return got
		}
	}
}

// TestDeterministicFaultStream: the same seed over the same frame
// sequence injects the identical faults.
func TestDeterministicFaultStream(t *testing.T) {
	run := func(seed uint64) (Stats, []wire.Frame) {
		a, b := newPipe()
		w := Wrap(a, Config{Seed: seed, DropProb: 0.2, DupProb: 0.2, ReorderProb: 0.2})
		for i := uint64(0); i < 200; i++ {
			if err := w.Send(wm(i)); err != nil {
				t.Fatal(err)
			}
		}
		st := w.Stats()
		w.Close()
		return st, drain(b)
	}
	s1, f1 := run(42)
	s2, f2 := run(42)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if len(f1) != len(f2) {
		t.Fatalf("same seed, different delivery: %d vs %d frames", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("frame %d differs: %v vs %v", i, f1[i], f2[i])
		}
	}
	if s1.Drops == 0 || s1.Dups == 0 || s1.Reorders == 0 {
		t.Fatalf("faults never fired at p=0.2 over 200 sends: %+v", s1)
	}
	s3, _ := run(43)
	if s1 == s3 {
		t.Fatalf("different seeds produced the identical fault stream: %+v", s1)
	}
}

// TestReorderSwapsAdjacent: a held frame rides out right after the frame
// that overtook it, and a clean Close flushes a still-held frame.
func TestReorderSwapsAdjacent(t *testing.T) {
	a, b := newPipe()
	w := Wrap(a, Config{Seed: 1, ReorderProb: 1})
	w.Send(wm(1)) // held
	w.Send(wm(2)) // overtakes, flushes 1
	w.Send(wm(3)) // held again (probability 1)
	w.Close()     // flush on close
	got := drain(b)
	want := []uint64{2, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("delivered %d frames, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f.(wire.Watermark).UpTo != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}

func TestPartitionIsSilent(t *testing.T) {
	a, b := newPipe()
	w := Wrap(a, Config{})
	w.Partition()
	if err := w.Send(wm(1)); err != nil {
		t.Fatalf("partitioned send must succeed silently, got %v", err)
	}
	if got := drain(b); len(got) != 0 {
		t.Fatalf("frame crossed a partition: %v", got)
	}
	// Inbound: a frame the peer sends while partitioned is discarded.
	b.Send(wm(7))
	b.Send(wm(8))
	w.Heal()
	w.Send(wm(2))
	if got := drain(b); len(got) != 1 || got[0].(wire.Watermark).UpTo != 2 {
		t.Fatalf("post-heal delivery: %v", got)
	}
}

func TestWedgeBlocksUntilHeal(t *testing.T) {
	a, _ := newPipe()
	w := Wrap(a, Config{})
	w.Wedge()
	done := make(chan error, 1)
	go func() { done <- w.Send(wm(1)) }()
	select {
	case err := <-done:
		t.Fatalf("wedged send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	w.Heal()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healed send failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send still blocked after heal")
	}
}

func TestSeverSurfacesEverywhere(t *testing.T) {
	a, _ := newPipe()
	w := Wrap(a, Config{})
	boom := errors.New("boom")
	w.Sever(boom)
	if err := w.Send(wm(1)); !errors.Is(err, boom) {
		t.Fatalf("send after sever: %v", err)
	}
	if _, err := w.Recv(); !errors.Is(err, boom) {
		t.Fatalf("recv after sever: %v", err)
	}
}

func TestFlakyBudget(t *testing.T) {
	a, b := newPipe()
	f := &Flaky{C: a, Budget: 2}
	if f.Send(wm(1)) != nil || f.Send(wm(2)) != nil {
		t.Fatal("sends within budget failed")
	}
	if f.Send(wm(3)) == nil {
		t.Fatal("send past budget succeeded")
	}
	if got := drain(b); len(got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(got))
	}
}

func TestScriptReplay(t *testing.T) {
	s := &Script{Frames: []wire.Frame{wm(1), wm(2)}}
	if f, _ := s.Recv(); f.(wire.Watermark).UpTo != 1 {
		t.Fatal("script order")
	}
	if f, _ := s.Recv(); f.(wire.Watermark).UpTo != 2 {
		t.Fatal("script order")
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("script end: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,drop=0.01,dup=0.02,reorder=0.03,delay=0.5:20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, DropProb: 0.01, DupProb: 0.02, ReorderProb: 0.03, DelayProb: 0.5, MaxDelay: 20 * time.Millisecond}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if c, err := ParseSpec(""); err != nil || c != (Config{}) {
		t.Fatalf("empty spec: %+v %v", c, err)
	}
	for _, bad := range []string{"drop", "drop=2", "delay=0.5", "delay=0.5:zz", "wat=1", "seed=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q parsed", bad)
		}
	}
}
