// Package chaos is the deterministic failure-injection layer: seeded
// wrappers around a frame connection that drop, duplicate, delay and
// reorder frames, blackhole a direction (one-way partition), wedge the
// peer (accepts a connection, reads nothing), or sever the link — the
// faults real deployments see, made reproducible enough to assert
// byte-identity through.
//
// The package grew out of the test-only doubles the kill matrices used
// (a send-budget flaky link, a scripted peer) and promotes them to a
// first-class tool shared by tests, `acep-bench chaos-*` and
// `acep-run -chaos`.
//
// Safety doctrine: silent drops, duplicates and reordering are only
// meaningful on links whose protocol detects or tolerates them — the
// replication link does (the dense ReplCut.Cut ordinal turns a
// duplicate into a re-ack, a gap into a detected link failure). The
// strictly-ordered ingress↔worker links would simply desynchronize, so
// inject only delay, partition, wedge or sever there.
//
// chaos deliberately defines its own structural Conn interface (the
// same three methods as cluster.Conn) and imports only internal/wire:
// cluster's own in-package tests can then use chaos without an import
// cycle, and interface values convert in both directions for free.
package chaos

import (
	"fmt"
	"io"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"acep/internal/wire"
)

// Conn is the frame-connection surface chaos wraps and presents —
// structurally identical to cluster.Conn, so either assigns to the
// other without conversion.
type Conn interface {
	Send(wire.Frame) error
	Recv() (wire.Frame, error)
	Close() error
}

// Config shapes the randomized fault stream. All probabilities are in
// [0, 1] and are rolled per Send in a fixed order from the seeded
// generator, so a given (Config, frame sequence) always injects the
// same faults — chaos runs are replayable.
type Config struct {
	Seed        uint64        // generator seed; same seed, same faults
	DropProb    float64       // silently drop the frame (repl link only)
	DupProb     float64       // send the frame twice (repl link only)
	ReorderProb float64       // hold the frame, send the next one first (repl link only)
	DelayProb   float64       // sleep before sending
	MaxDelay    time.Duration // delay magnitude bound (uniform in (0, MaxDelay])
}

// Stats counts the faults a wrapper actually injected.
type Stats struct {
	Drops, Dups, Reorders, Delays uint64
}

// Wrapper injects faults according to a Config and responds to the
// explicit fault controls (Partition/Wedge/Sever/Heal). Send obeys the
// package-wide single-sender contract; Recv may run concurrently with
// Send, and the controls may be called from any goroutine.
type Wrapper struct {
	c Conn

	mu       sync.Mutex
	cond     *sync.Cond
	rng      *rand.Rand
	cfg      Config
	held     wire.Frame // reorder slot
	heldSet  bool
	sendCut  bool // outbound blackhole: Send succeeds, frame vanishes
	recvCut  bool // inbound blackhole: received frames are discarded
	wedged   bool // Send blocks until Heal or Close
	closed   bool
	severErr error
	stats    Stats
}

// Wrap returns a fault-injecting view of c.
func Wrap(c Conn, cfg Config) *Wrapper {
	w := &Wrapper{c: c, cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Partition blackholes both directions: sends succeed but vanish,
// received frames are discarded. This is a *silent* partition — neither
// endpoint sees an error — which is exactly what makes it the hard case
// the lease protocol exists for.
func (w *Wrapper) Partition() {
	w.mu.Lock()
	w.sendCut, w.recvCut = true, true
	w.mu.Unlock()
}

// PartitionSend blackholes the outbound direction only.
func (w *Wrapper) PartitionSend() {
	w.mu.Lock()
	w.sendCut = true
	w.mu.Unlock()
}

// PartitionRecv blackholes the inbound direction only.
func (w *Wrapper) PartitionRecv() {
	w.mu.Lock()
	w.recvCut = true
	w.mu.Unlock()
}

// Wedge makes Send block (a peer that accepted the connection and
// stopped reading; the socket buffer has filled). Heal or Close unblock.
func (w *Wrapper) Wedge() {
	w.mu.Lock()
	w.wedged = true
	w.mu.Unlock()
}

// Sever fails the link with an explicit error: the underlying
// connection closes and every subsequent Send and Recv returns the
// error. Unlike Partition, both endpoints notice.
func (w *Wrapper) Sever(err error) {
	if err == nil {
		err = fmt.Errorf("chaos: link severed")
	}
	w.mu.Lock()
	w.severErr = err
	w.mu.Unlock()
	w.c.Close()
	w.cond.Broadcast()
}

// Heal lifts partitions and wedges (a severed link stays severed).
func (w *Wrapper) Heal() {
	w.mu.Lock()
	w.sendCut, w.recvCut, w.wedged = false, false, false
	w.mu.Unlock()
	w.cond.Broadcast()
}

// Stats reports the faults injected so far.
func (w *Wrapper) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

func (w *Wrapper) Send(f wire.Frame) error {
	w.mu.Lock()
	for w.wedged && !w.closed && w.severErr == nil {
		w.cond.Wait()
	}
	if err := w.deadLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if w.sendCut {
		w.mu.Unlock()
		return nil // silent blackhole: the caller believes it sent
	}
	// Roll faults in a fixed order so the stream stays deterministic.
	var out [2]wire.Frame
	n := 0
	switch {
	case w.cfg.DropProb > 0 && w.rng.Float64() < w.cfg.DropProb:
		w.stats.Drops++
	case w.cfg.DupProb > 0 && w.rng.Float64() < w.cfg.DupProb:
		w.stats.Dups++
		out[0], out[1] = f, f
		n = 2
	case w.cfg.ReorderProb > 0 && !w.heldSet && w.rng.Float64() < w.cfg.ReorderProb:
		w.stats.Reorders++
		w.held, w.heldSet = f, true
	default:
		out[0] = f
		n = 1
	}
	if n > 0 && w.heldSet && n < 2 {
		// A held frame rides out right after the one that overtook it.
		out[1] = w.held
		w.held, w.heldSet = nil, false
		n = 2
	}
	var nap time.Duration
	if w.cfg.DelayProb > 0 && w.cfg.MaxDelay > 0 && w.rng.Float64() < w.cfg.DelayProb {
		w.stats.Delays++
		nap = time.Duration(w.rng.Int64N(int64(w.cfg.MaxDelay))) + 1
	}
	w.mu.Unlock()
	if nap > 0 {
		time.Sleep(nap)
	}
	for i := 0; i < n; i++ {
		if err := w.c.Send(out[i]); err != nil {
			return err
		}
	}
	return nil
}

func (w *Wrapper) Recv() (wire.Frame, error) {
	for {
		// Check the sever state before blocking in the underlying Recv:
		// Close unblocks a socket read, but a transport whose Close only
		// half-closes (or a link already severed before the first Recv)
		// must still surface the error instead of waiting on a peer that
		// will never speak.
		w.mu.Lock()
		if serr := w.severErr; serr != nil {
			w.mu.Unlock()
			return nil, serr
		}
		w.mu.Unlock()
		f, err := w.c.Recv()
		w.mu.Lock()
		if serr := w.severErr; serr != nil {
			w.mu.Unlock()
			return nil, serr
		}
		cut := w.recvCut
		w.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if cut {
			continue // inbound blackhole: the frame arrived, nobody saw it
		}
		return f, nil
	}
}

func (w *Wrapper) deadLocked() error {
	if w.severErr != nil {
		return w.severErr
	}
	if w.closed {
		return io.ErrClosedPipe
	}
	return nil
}

func (w *Wrapper) Close() error {
	w.mu.Lock()
	var flush wire.Frame
	if w.heldSet && !w.sendCut && w.severErr == nil && !w.closed {
		flush, w.held, w.heldSet = w.held, nil, false
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	if flush != nil {
		w.c.Send(flush) // best effort: a reorder hold must not become a drop on clean close
	}
	return w.c.Close()
}

// Flaky passes frames through until Budget sends have happened, then
// fails every Send and severs the underlying link — the classic
// "link died mid-stream" double from the kill matrices. Not safe for
// concurrent Send (matching the Conn contract).
type Flaky struct {
	C      Conn
	Budget int
}

func (f *Flaky) Send(fr wire.Frame) error {
	if f.Budget <= 0 {
		f.C.Close()
		return fmt.Errorf("chaos: injected send failure")
	}
	f.Budget--
	return f.C.Send(fr)
}

func (f *Flaky) Recv() (wire.Frame, error) { return f.C.Recv() }
func (f *Flaky) Close() error              { return f.C.Close() }

// Script replays a fixed frame sequence and swallows sends; it fakes a
// misbehaving peer in handshake tests.
type Script struct {
	Frames []wire.Frame
}

func (s *Script) Send(wire.Frame) error { return nil }
func (s *Script) Recv() (wire.Frame, error) {
	if len(s.Frames) == 0 {
		return nil, io.EOF
	}
	f := s.Frames[0]
	s.Frames = s.Frames[1:]
	return f, nil
}
func (s *Script) Close() error { return nil }

// WrapAccept chaos-wraps every connection an accept function yields.
// Each connection derives its own seed from cfg.Seed and the accept
// ordinal, so multi-connection runs stay deterministic.
func WrapAccept(accept func() (Conn, error), cfg Config) func() (Conn, error) {
	var n atomic.Uint64
	return func() (Conn, error) {
		c, err := accept()
		if err != nil {
			return nil, err
		}
		cc := cfg
		cc.Seed = cfg.Seed ^ (n.Add(1) * 0xbf58476d1ce4e5b9)
		return Wrap(c, cc), nil
	}
}

// ParseSpec parses the command-line chaos grammar shared by acep-run
// -chaos and acep-bench: a comma-separated list of
//
//	seed=N  drop=P  dup=P  reorder=P  delay=P:DUR
//
// e.g. "seed=7,drop=0.01,delay=0.2:20ms". Empty string is a zero Config.
func ParseSpec(s string) (Config, error) {
	var cfg Config
	if s == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec element %q (want k=v)", part)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: seed: %w", err)
			}
			cfg.Seed = n
		case "drop", "dup", "reorder":
			p, err := parseProb(v)
			if err != nil {
				return cfg, fmt.Errorf("chaos: %s: %w", k, err)
			}
			switch k {
			case "drop":
				cfg.DropProb = p
			case "dup":
				cfg.DupProb = p
			case "reorder":
				cfg.ReorderProb = p
			}
		case "delay":
			ps, ds, ok := strings.Cut(v, ":")
			if !ok {
				return cfg, fmt.Errorf("chaos: delay wants P:DUR, got %q", v)
			}
			p, err := parseProb(ps)
			if err != nil {
				return cfg, fmt.Errorf("chaos: delay: %w", err)
			}
			d, err := time.ParseDuration(ds)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("chaos: delay duration %q", ds)
			}
			cfg.DelayProb, cfg.MaxDelay = p, d
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", k)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}
