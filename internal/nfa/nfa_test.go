package nfa

import (
	"math/rand"
	"reflect"
	"testing"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/oracle"
	"acep/internal/pattern"
	"acep/internal/plan"
)

func mkSchema(n int) *event.Schema {
	s := event.NewSchema()
	for i := 0; i < n; i++ {
		s.MustAddType(string(rune('A'+i)), "x")
	}
	return s
}

// genStream produces a random timestamp-ordered stream where type i
// appears with relative weight weights[i] and x is drawn from {0..xmod-1}.
func genStream(r *rand.Rand, s *event.Schema, weights []int, count, xmod int, gap event.Time) []event.Event {
	total := 0
	for _, w := range weights {
		total += w
	}
	var evs []event.Event
	ts := event.Time(0)
	var seq uint64
	for i := 0; i < count; i++ {
		ts += event.Time(1 + r.Intn(int(gap)))
		pick := r.Intn(total)
		typ := 0
		for pick >= weights[typ] {
			pick -= weights[typ]
			typ++
		}
		e := s.MustNew(typ, ts, float64(r.Intn(xmod)))
		seq++
		e.Seq = seq
		evs = append(evs, e)
	}
	return evs
}

func runEngine(pat *pattern.Pattern, op *plan.OrderPlan, evs []event.Event) ([]*match.Match, Stats) {
	var out []*match.Match
	g := New(pat, op, func(m *match.Match) { out = append(out, m) })
	for i := range evs {
		g.Process(&evs[i])
	}
	g.Finish()
	return out, g.Stats()
}

func seqChainPattern(s *event.Schema, n int, window event.Time) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, window)
	for i := 0; i < n; i++ {
		b.Event(i)
	}
	for i := 0; i+1 < n; i++ {
		b.WherePred(pattern.Pred{L: i, R: i + 1, AttrL: 0, AttrR: 0, Op: pattern.EQ})
	}
	return b.MustBuild()
}

func TestNFAPaperExample(t *testing.T) {
	// SEQ(A,B,C) with person_id equality, paper Example 1.
	s := mkSchema(3)
	pat := seqChainPattern(s, 3, 100)
	evs := []event.Event{
		{Type: 0, TS: 10, Seq: 1, Attrs: []float64{7}}, // A person 7
		{Type: 1, TS: 20, Seq: 2, Attrs: []float64{7}}, // B person 7
		{Type: 0, TS: 25, Seq: 3, Attrs: []float64{9}}, // A person 9
		{Type: 2, TS: 30, Seq: 4, Attrs: []float64{7}}, // C person 7 -> match
		{Type: 2, TS: 40, Seq: 5, Attrs: []float64{9}}, // C person 9, no B
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}} {
		out, _ := runEngine(pat, plan.NewOrderPlan(order), evs)
		if len(out) != 1 {
			t.Fatalf("order %v: %d matches; want 1", order, len(out))
		}
		m := out[0]
		if m.Events[0].Seq != 1 || m.Events[1].Seq != 2 || m.Events[2].Seq != 4 {
			t.Fatalf("order %v: wrong match %v", order, m)
		}
	}
}

func TestNFAWindowExpiry(t *testing.T) {
	s := mkSchema(2)
	pat := seqChainPattern(s, 2, 50)
	evs := []event.Event{
		{Type: 0, TS: 10, Seq: 1, Attrs: []float64{1}},
		{Type: 1, TS: 61, Seq: 2, Attrs: []float64{1}}, // 51 > W: no match
		{Type: 0, TS: 70, Seq: 3, Attrs: []float64{1}},
		{Type: 1, TS: 100, Seq: 4, Attrs: []float64{1}}, // within window of A@70
	}
	out, _ := runEngine(pat, plan.NewOrderPlan([]int{0, 1}), evs)
	if len(out) != 1 {
		t.Fatalf("%d matches; want 1", len(out))
	}
	if out[0].Events[0].Seq != 3 {
		t.Fatalf("wrong A matched: %v", out[0])
	}
	// Window boundary is inclusive: exactly W apart matches.
	evs2 := []event.Event{
		{Type: 0, TS: 10, Seq: 1, Attrs: []float64{1}},
		{Type: 1, TS: 60, Seq: 2, Attrs: []float64{1}},
	}
	out2, _ := runEngine(pat, plan.NewOrderPlan([]int{0, 1}), evs2)
	if len(out2) != 1 {
		t.Fatalf("boundary match missed")
	}
}

func TestNFAAllOrdersAgreeWithOracle(t *testing.T) {
	// The emitted match set must be identical for every plan order and
	// equal to the brute-force oracle.
	s := mkSchema(3)
	pat := seqChainPattern(s, 3, 60)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		evs := genStream(r, s, []int{3, 2, 1}, 120, 3, 4)
		want := oracle.Keys(oracle.Matches(pat, evs))
		for _, order := range [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
			out, _ := runEngine(pat, plan.NewOrderPlan(order), evs)
			got := oracle.Keys(out)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d order %v: got %d matches, oracle %d\ngot:  %v\nwant: %v",
					trial, order, len(got), len(want), got, want)
			}
		}
	}
}

func TestNFAConjunction(t *testing.T) {
	s := mkSchema(3)
	b := pattern.NewBuilder(s, pattern.And, 60)
	for i := 0; i < 3; i++ {
		b.Event(i)
	}
	b.WherePred(pattern.Pred{L: 0, R: 1, Op: pattern.EQ})
	pat := b.MustBuild()
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		evs := genStream(r, s, []int{2, 2, 1}, 90, 3, 4)
		want := oracle.Keys(oracle.Matches(pat, evs))
		for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}} {
			out, _ := runEngine(pat, plan.NewOrderPlan(order), evs)
			if got := oracle.Keys(out); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d order %v: engine/oracle mismatch (%d vs %d)",
					trial, order, len(got), len(want))
			}
		}
	}
}

func TestNFANegationAgainstOracle(t *testing.T) {
	s := mkSchema(3)
	b := pattern.NewBuilder(s, pattern.Seq, 60)
	b.Event(0)
	n := b.Event(1)
	b.Event(2)
	b.Negate(n)
	b.WherePred(pattern.Pred{L: n, R: 0, Op: pattern.EQ})
	pat := b.MustBuild()
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		evs := genStream(r, s, []int{2, 1, 2}, 100, 2, 4)
		want := oracle.Keys(oracle.Matches(pat, evs))
		out, _ := runEngine(pat, plan.NewOrderPlan([]int{0, 2}), evs)
		if got := oracle.Keys(out); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: negation mismatch: got %d want %d", trial, len(got), len(want))
		}
	}
}

func TestNFAKleeneAgainstOracle(t *testing.T) {
	s := mkSchema(3)
	b := pattern.NewBuilder(s, pattern.Seq, 60)
	b.Event(0)
	k := b.Event(1)
	b.Event(2)
	b.Kleene(k)
	b.WherePred(pattern.Pred{L: k, R: 0, Op: pattern.EQ})
	pat := b.MustBuild()
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		evs := genStream(r, s, []int{1, 3, 1}, 100, 2, 4)
		wantMs := oracle.Matches(pat, evs)
		want := oracle.Keys(wantMs)
		var out []*match.Match
		g := New(pat, plan.NewOrderPlan([]int{0, 2}), func(m *match.Match) { out = append(out, m) })
		for i := range evs {
			g.Process(&evs[i])
		}
		g.Finish()
		if got := oracle.Keys(out); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: kleene core mismatch: got %d want %d", trial, len(got), len(want))
		}
		// Kleene sets must match too: index oracle by key.
		oracleBy := map[string][]uint64{}
		for _, m := range wantMs {
			var seqs []uint64
			for _, e := range m.Kleene[1] {
				seqs = append(seqs, e.Seq)
			}
			oracleBy[m.Key()] = seqs
		}
		for _, m := range out {
			var seqs []uint64
			for _, e := range m.Kleene[1] {
				seqs = append(seqs, e.Seq)
			}
			if !reflect.DeepEqual(seqs, oracleBy[m.Key()]) {
				t.Fatalf("trial %d: kleene set mismatch for %s: %v vs %v",
					trial, m.Key(), seqs, oracleBy[m.Key()])
			}
		}
	}
}

func TestNFADuplicateTypeAcrossPositions(t *testing.T) {
	// SEQ(A, A): same type at two positions; an event must not pair with
	// itself.
	s := mkSchema(1)
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	b.Event(0)
	b.Event(0)
	pat := b.MustBuild()
	evs := []event.Event{
		{Type: 0, TS: 10, Seq: 1, Attrs: []float64{0}},
		{Type: 0, TS: 20, Seq: 2, Attrs: []float64{0}},
		{Type: 0, TS: 30, Seq: 3, Attrs: []float64{0}},
	}
	want := oracle.Keys(oracle.Matches(pat, evs))
	for _, order := range [][]int{{0, 1}, {1, 0}} {
		out, _ := runEngine(pat, plan.NewOrderPlan(order), evs)
		if got := oracle.Keys(out); !reflect.DeepEqual(got, want) {
			t.Fatalf("order %v: got %v want %v", order, got, want)
		}
	}
	// 3 ordered pairs: (1,2), (1,3), (2,3).
	if len(want) != 3 {
		t.Fatalf("oracle found %d; want 3", len(want))
	}
}

func TestNFAEmitFilter(t *testing.T) {
	s := mkSchema(2)
	pat := seqChainPattern(s, 2, 100)
	evs := []event.Event{
		{Type: 0, TS: 10, Seq: 1, Attrs: []float64{1}},
		{Type: 1, TS: 20, Seq: 2, Attrs: []float64{1}},
		{Type: 0, TS: 30, Seq: 3, Attrs: []float64{1}},
		{Type: 1, TS: 40, Seq: 4, Attrs: []float64{1}},
	}
	var out []*match.Match
	g := New(pat, plan.NewOrderPlan([]int{0, 1}), func(m *match.Match) { out = append(out, m) })
	g.SetEmitOnlyBefore(3) // only matches touching events 1 or 2
	for i := range evs {
		g.Process(&evs[i])
	}
	g.Finish()
	// Full set would be (1,2), (1,4), (3,4); filter drops (3,4).
	if len(out) != 2 {
		t.Fatalf("%d matches; want 2", len(out))
	}
	if g.Stats().Suppressed != 1 {
		t.Fatalf("Suppressed = %d; want 1", g.Stats().Suppressed)
	}
}

func TestNFAStatsAndExpiry(t *testing.T) {
	s := mkSchema(2)
	pat := seqChainPattern(s, 2, 10)
	var out []*match.Match
	g := New(pat, plan.NewOrderPlan([]int{0, 1}), func(m *match.Match) { out = append(out, m) })
	// Burst of As, then silence long past the window, then a B.
	var seq uint64
	for ts := event.Time(1); ts <= 5; ts++ {
		seq++
		e := s.MustNew(0, ts, 1)
		e.Seq = seq
		g.Process(&e)
	}
	st := g.Stats()
	if st.PMCreated != 5 || st.LivePMs != 5 {
		t.Fatalf("after burst: %+v", st)
	}
	// A B inside the window pairs with all five As.
	seq++
	b := s.MustNew(1, 6, 1)
	b.Seq = seq
	g.Process(&b)
	if len(out) != 5 {
		t.Fatalf("%d matches; want 5", len(out))
	}
	seq++
	late := s.MustNew(1, 500, 1)
	late.Seq = seq
	g.Process(&late)
	g.Finish()
	if len(out) != 5 {
		t.Fatal("expired PM matched the late B")
	}
	st = g.Stats()
	if st.LivePMs != 0 {
		t.Fatalf("PMs not pruned: %+v", st)
	}
	if st.PredEvals == 0 {
		t.Fatal("no predicate evaluations counted")
	}
	if g.Plan() == nil {
		t.Fatal("Plan() nil")
	}
}

func TestNFAPlanOrderAffectsWork(t *testing.T) {
	// With skewed rates, starting from the rare type must create far
	// fewer PMs than starting from the frequent type (the paper's core
	// motivation).
	s := mkSchema(3)
	pat := seqChainPattern(s, 3, 200)
	r := rand.New(rand.NewSource(5))
	evs := genStream(r, s, []int{20, 4, 1}, 2000, 2, 2)
	_, ascStats := runEngine(pat, plan.NewOrderPlan([]int{2, 1, 0}), evs)
	_, descStats := runEngine(pat, plan.NewOrderPlan([]int{0, 1, 2}), evs)
	if ascStats.Emitted != descStats.Emitted {
		t.Fatalf("order changed semantics: %d vs %d", ascStats.Emitted, descStats.Emitted)
	}
	if ascStats.PMCreated >= descStats.PMCreated {
		t.Fatalf("ascending order PMs %d >= descending %d", ascStats.PMCreated, descStats.PMCreated)
	}
}

func TestNFASinglePosition(t *testing.T) {
	s := mkSchema(1)
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	b.Event(0)
	pat := b.MustBuild()
	evs := []event.Event{
		{Type: 0, TS: 1, Seq: 1, Attrs: []float64{0}},
		{Type: 0, TS: 2, Seq: 2, Attrs: []float64{0}},
	}
	out, st := runEngine(pat, plan.NewOrderPlan([]int{0}), evs)
	if len(out) != 2 || st.Emitted != 2 {
		t.Fatalf("%d matches; want 2", len(out))
	}
}
