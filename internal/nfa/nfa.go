// Package nfa implements the order-based evaluation engine: a lazy chain
// NFA (paper ref [36], Figure 1(b)) that detects the pattern's core
// positions in the order prescribed by an OrderPlan rather than in
// declaration order.
//
// Events are buffered per core position. A partial match (PM) is created
// when an event of the plan's first position arrives; a PM at state s has
// filled the first s positions of the order and advances either when a
// matching event of position order[s] arrives (eager path) or, upon
// creation, by scanning the history buffer of order[s] for events that
// arrived earlier (lazy path). Every extension forks, so each event
// combination is enumerated exactly once. Core-complete matches are
// handed to the residual resolver for negation/Kleene processing.
package nfa

import (
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// Stats aggregates the engine's work and output counters.
type Stats struct {
	// PMCreated counts partial matches created (a memory/work proxy, the
	// quantity the greedy plan cost models).
	PMCreated uint64
	// PredEvals counts predicate evaluations (engine + resolver).
	PredEvals uint64
	// Emitted counts matches delivered to the callback.
	Emitted uint64
	// Dropped counts core-complete matches discarded by residual
	// constraints.
	Dropped uint64
	// Suppressed counts matches withheld by the migration emit filter.
	Suppressed uint64
	// LivePMs is the current number of registered partial matches.
	LivePMs int
	// PeakPMs is the high-water mark of LivePMs.
	PeakPMs int
	// Pending is the number of matches parked in the resolver.
	Pending int
}

// pm is a partial match: an assignment of events to a prefix of the
// plan's order.
type pm struct {
	evs          []*event.Event // by pattern position
	filled       int
	minTS, maxTS event.Time
}

// Engine is a lazy-NFA evaluation engine for one (non-OR) pattern and one
// order plan.
type Engine struct {
	pat *pattern.Pattern
	op  *plan.OrderPlan
	res *match.Resolver

	bufs     []*match.Buffer // per pattern position; non-nil at core ones
	orderIdx []int           // pattern position -> index in order (-1 if residual)
	states   [][]*pm         // states[s]: PMs with s filled positions (1..n-1)
	n        int             // number of core positions

	watermark  event.Time
	retention  event.Time
	lastPrune  event.Time
	emitBefore uint64 // when >0, emit only matches with a core Seq < emitBefore

	pmCreated  uint64
	predEvals  uint64
	suppressed uint64
	live       int
	peak       int
}

// New builds an engine for the pattern following the given order plan.
// emit receives every surviving match.
func New(pat *pattern.Pattern, op *plan.OrderPlan, emit func(*match.Match)) *Engine {
	g := &Engine{
		pat:       pat,
		op:        op,
		res:       match.NewResolver(pat, emit),
		bufs:      make([]*match.Buffer, pat.NumPositions()),
		orderIdx:  make([]int, pat.NumPositions()),
		n:         len(op.Order),
		retention: 2 * pat.Window,
	}
	for i := range g.orderIdx {
		g.orderIdx[i] = -1
	}
	for k, p := range op.Order {
		g.orderIdx[p] = k
		g.bufs[p] = &match.Buffer{}
	}
	g.states = make([][]*pm, g.n)
	return g
}

// Resolver exposes the residual resolver (for migration seeding).
func (g *Engine) Resolver() *match.Resolver { return g.res }

// SetEmitOnlyBefore restricts emission to matches containing at least one
// core event with Seq < seq: the old-plan side of the paper's §2.2
// migration protocol. Zero removes the filter.
func (g *Engine) SetEmitOnlyBefore(seq uint64) { g.emitBefore = seq }

// Plan returns the order plan in effect.
func (g *Engine) Plan() plan.Plan { return g.op }

// Advance moves the watermark forward, resolving parked matches and
// periodically pruning buffers and expired partial matches.
func (g *Engine) Advance(ts event.Time) {
	if ts < g.watermark {
		return
	}
	g.watermark = ts
	g.res.Advance(ts)
	if ts-g.lastPrune >= g.pat.Window/2 {
		g.prune()
		g.lastPrune = ts
	}
}

func (g *Engine) prune() {
	horizon := g.watermark - g.retention
	for _, b := range g.bufs {
		if b != nil {
			b.Prune(horizon)
		}
	}
	for s, list := range g.states {
		kept := list[:0]
		for _, m := range list {
			if !g.expired(m) {
				kept = append(kept, m)
			}
		}
		for i := len(kept); i < len(list); i++ {
			list[i] = nil
		}
		g.states[s] = kept
	}
	g.live = 0
	for _, list := range g.states {
		g.live += len(list)
	}
}

// expired reports whether the PM can no longer be extended: every future
// event is too far from its earliest element.
func (g *Engine) expired(m *pm) bool {
	return g.watermark-m.minTS > g.pat.Window
}

// Process feeds one input event. Events must arrive in non-decreasing
// timestamp order.
func (g *Engine) Process(e *event.Event) {
	if e.TS > g.watermark {
		g.Advance(e.TS)
	}
	for p, pos := range g.pat.Positions {
		if pos.Type != e.Type {
			continue
		}
		k := g.orderIdx[p]
		if k < 0 {
			continue // residual position: handled by the resolver below
		}
		if !match.UnaryOK(g.pat, p, e, &g.predEvals) {
			continue
		}
		if k == 0 {
			g.create(p, e)
		} else {
			g.extendState(k, p, e)
		}
		g.bufs[p].Add(e)
	}
	if g.res.HasResiduals() {
		g.res.Observe(e)
	}
}

// extendState offers event e (at position p = order[k]) to every PM
// waiting at state k, removing expired PMs on the way.
func (g *Engine) extendState(k, p int, e *event.Event) {
	list := g.states[k]
	for i := 0; i < len(list); {
		m := list[i]
		if g.expired(m) {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			list = list[:len(list)-1]
			g.live--
			continue
		}
		if g.canExtend(m, p, e) {
			g.fork(m, p, e)
		}
		i++
	}
	g.states[k] = list
}

// canExtend checks window, sequence order and predicates of e at position
// p against every event already assigned in m.
func (g *Engine) canExtend(m *pm, p int, e *event.Event) bool {
	for q, qe := range m.evs {
		if qe == nil {
			continue
		}
		if !match.PairOK(g.pat, g.pat.Window, q, qe, p, e, &g.predEvals) {
			return false
		}
	}
	return true
}

// create starts a new PM from an event at the plan's first position.
func (g *Engine) create(p int, e *event.Event) {
	m := &pm{
		evs:    make([]*event.Event, len(g.pat.Positions)),
		filled: 1,
		minTS:  e.TS,
		maxTS:  e.TS,
	}
	m.evs[p] = e
	g.pmCreated++
	g.register(m)
}

// fork copies parent, adds e at position p and registers the child.
func (g *Engine) fork(parent *pm, p int, e *event.Event) {
	m := &pm{
		evs:    append([]*event.Event(nil), parent.evs...),
		filled: parent.filled + 1,
		minTS:  parent.minTS,
		maxTS:  parent.maxTS,
	}
	if e.TS < m.minTS {
		m.minTS = e.TS
	}
	if e.TS > m.maxTS {
		m.maxTS = e.TS
	}
	m.evs[p] = e
	g.pmCreated++
	g.register(m)
}

// register completes the PM if full; otherwise it parks it at its state
// and lazily scans the next position's history for events that already
// arrived.
func (g *Engine) register(m *pm) {
	if m.filled == g.n {
		g.complete(m)
		return
	}
	g.states[m.filled] = append(g.states[m.filled], m)
	g.live++
	if g.live > g.peak {
		g.peak = g.live
	}
	next := g.op.Order[m.filled]
	// Lazy path: events of the next position that arrived before this PM
	// was created. Future events arrive through extendState.
	g.bufs[next].Scan(m.maxTS-g.pat.Window, m.minTS+g.pat.Window, false, false, func(c *event.Event) bool {
		if g.canExtend(m, next, c) {
			g.fork(m, next, c)
		}
		return true
	})
}

// complete applies the migration emit filter and hands the core match to
// the resolver.
func (g *Engine) complete(m *pm) {
	if g.emitBefore > 0 {
		old := false
		for _, ev := range m.evs {
			if ev != nil && ev.Seq < g.emitBefore {
				old = true
				break
			}
		}
		if !old {
			g.suppressed++
			return
		}
	}
	g.res.OnCoreComplete(m.evs, g.watermark)
}

// Finish force-resolves all parked matches, treating the stream as ended.
func (g *Engine) Finish() { g.res.Flush() }

// LivePMs reports the current number of registered partial matches (the
// shedding layer's load signal).
func (g *Engine) LivePMs() int { return g.live }

// HotTypes marks (in mark, indexed by event type) every type that could
// extend a live partial match right now: for each non-empty NFA state,
// the type of the next position in the plan's order. An event of a hot
// type may be the one that advances — or completes — an in-flight match,
// so the pattern-aware shedding policy protects it.
func (g *Engine) HotTypes(mark []bool) {
	for s := 1; s < g.n; s++ {
		if len(g.states[s]) == 0 {
			continue
		}
		if t := g.pat.Positions[g.op.Order[s]].Type; t < len(mark) {
			mark[t] = true
		}
	}
}

// HotKeys calls add with key(ev) for one representative event of every
// live partial match. For key-connected (partitionable) patterns every
// event of a PM carries the same key value, so one representative
// identifies the PM's entity.
func (g *Engine) HotKeys(key func(*event.Event) uint64, add func(uint64)) {
	for _, list := range g.states {
		for _, m := range list {
			for _, e := range m.evs {
				if e != nil {
					add(key(e))
					break
				}
			}
		}
	}
}

// Stats returns a snapshot of the engine's counters.
func (g *Engine) Stats() Stats {
	return Stats{
		PMCreated:  g.pmCreated,
		PredEvals:  g.predEvals + g.res.PredEvals,
		Emitted:    g.res.Emitted,
		Dropped:    g.res.Dropped,
		Suppressed: g.suppressed,
		LivePMs:    g.live,
		PeakPMs:    g.peak,
		Pending:    g.res.PendingCount(),
	}
}
