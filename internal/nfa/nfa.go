// Package nfa implements the order-based evaluation engine: a lazy chain
// NFA (paper ref [36], Figure 1(b)) that detects the pattern's core
// positions in the order prescribed by an OrderPlan rather than in
// declaration order.
//
// Events are buffered per core position. A partial match (PM) is created
// when an event of the plan's first position arrives; a PM at state s has
// filled the first s positions of the order and advances either when a
// matching event of position order[s] arrives (eager path) or, upon
// creation, by scanning the history buffer of order[s] for events that
// arrived earlier (lazy path). Every extension forks, so each event
// combination is enumerated exactly once. Core-complete matches are
// handed to the residual resolver for negation/Kleene processing.
//
// The steady-state per-event path is allocation-free: arriving events are
// copied into a chunked arena (released whole chunks at a time as the
// watermark passes them), PMs and their assignment arrays come from a
// free list recycled on expiry and completion, and all predicate and
// order checks run off the pattern's compiled transition tables — a
// type-indexed dispatch list plus per-state flat pair-check tables with
// operand orientation baked in.
package nfa

import (
	"fmt"
	"sort"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// Stats aggregates the engine's work and output counters.
type Stats struct {
	// PMCreated counts partial matches created (a memory/work proxy, the
	// quantity the greedy plan cost models).
	PMCreated uint64
	// PredEvals counts predicate evaluations (engine + resolver).
	PredEvals uint64
	// Emitted counts matches delivered to the callback.
	Emitted uint64
	// Dropped counts core-complete matches discarded by residual
	// constraints.
	Dropped uint64
	// Suppressed counts matches withheld by the migration emit filter.
	Suppressed uint64
	// LivePMs is the current number of registered partial matches.
	LivePMs int
	// PeakPMs is the high-water mark of LivePMs.
	PeakPMs int
	// Pending is the number of matches parked in the resolver.
	Pending int
}

// pm is a partial match: an assignment of events to a prefix of the
// plan's order.
type pm struct {
	evs          []*event.Event // by pattern position
	filled       int
	minTS, maxTS event.Time
}

// stateCheck is one compiled extension check of a state: the event being
// offered must be compatible with the PM's event at pos, per the
// pre-oriented pair table.
type stateCheck struct {
	pos int // previously-filled pattern position
	pc  *pattern.PairCheck
}

// Engine is a lazy-NFA evaluation engine for one (non-OR) pattern and one
// order plan.
type Engine struct {
	pat *pattern.Pattern
	op  *plan.OrderPlan
	res *match.Resolver

	bufs     []*match.Buffer // per pattern position; non-nil at core ones
	orderIdx []int           // pattern position -> index in order (-1 if residual)
	states   [][]*pm         // states[s]: PMs with s filled positions (1..n-1)
	checks   [][]stateCheck  // per state: checks against the filled prefix
	n        int             // number of core positions

	arena    match.Arena
	external bool // events are caller-stable; retain pointers, don't intern
	pmFree   []*pm

	watermark  event.Time
	retention  event.Time
	lastPrune  event.Time
	emitBefore uint64 // when >0, emit only matches with a core Seq < emitBefore
	prefix     int    // when >0, order[0..prefix-1] is fed externally via Seed

	pmCreated  uint64
	predEvals  uint64
	suppressed uint64
	live       int
	peak       int
}

// New builds an engine for the pattern following the given order plan.
// emit receives every surviving match. The engine copies every event it
// keeps, so the caller's *event.Event is never retained past Process.
func New(pat *pattern.Pattern, op *plan.OrderPlan, emit func(*match.Match)) *Engine {
	g := &Engine{
		pat:       pat,
		op:        op,
		res:       match.NewResolver(pat, emit),
		bufs:      make([]*match.Buffer, pat.NumPositions()),
		orderIdx:  make([]int, pat.NumPositions()),
		n:         len(op.Order),
		retention: 2 * pat.Window,
	}
	for i := range g.orderIdx {
		g.orderIdx[i] = -1
	}
	for k, p := range op.Order {
		g.orderIdx[p] = k
		g.bufs[p] = &match.Buffer{}
	}
	g.states = make([][]*pm, g.n)
	// Compile the per-state transition tables: a PM at state s has filled
	// exactly order[0..s-1], so the extension checks are a fixed list (in
	// declaration-position order, matching the historical predicate
	// evaluation order).
	g.checks = make([][]stateCheck, g.n)
	for s := 1; s < g.n; s++ {
		next := op.Order[s]
		cs := make([]stateCheck, 0, s)
		for k := 0; k < s; k++ {
			q := op.Order[k]
			cs = append(cs, stateCheck{pos: q, pc: pat.Pair(next, q)})
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].pos < cs[j].pos })
		g.checks[s] = cs
	}
	return g
}

// Resolver exposes the residual resolver (for migration seeding).
func (g *Engine) Resolver() *match.Resolver { return g.res }

// SetOwnedEmit declares that the emit callback consumes each match (and
// its events) synchronously and retains nothing past its return. The
// engine then recycles emission structures and overwrites released arena
// chunks instead of leaving them to the GC, making the steady-state path
// allocation-free. Must not be combined with callbacks that buffer
// matches (e.g. the shard collector).
func (g *Engine) SetOwnedEmit(owned bool) {
	g.res.SetOwned(owned)
	if g.emitBefore == 0 { // a migrating engine's arena stays frozen
		g.arena.SetRecycle(owned)
	}
}

// SetExternal declares that every event handed to Process is already
// stored stably outside the engine — an ingest or decode arena with
// recycling off, whose chunks the garbage collector keeps alive for as
// long as anything references them — so the engine retains the caller's
// pointer directly instead of interning a copy. This removes the last
// per-event copy on the batched wire-to-match path: the arena slot the
// decoder filled is the very pointer buffers and partial matches hold.
func (g *Engine) SetExternal(on bool) { g.external = on }

// SetEmitOnlyBefore restricts emission to matches containing at least one
// core event with Seq < seq: the old-plan side of the paper's §2.2
// migration protocol. Zero removes the filter. Setting a boundary also
// freezes the arena: migration hands this engine's residual events to
// the successor, so released chunks must never be overwritten.
func (g *Engine) SetEmitOnlyBefore(seq uint64) {
	g.emitBefore = seq
	if seq > 0 {
		g.arena.Freeze()
	}
}

// Plan returns the order plan in effect.
func (g *Engine) Plan() plan.Plan { return g.op }

// SetSharedPrefix declares that the first k positions of the plan's
// order are evaluated externally: a shared prefix runner (see
// internal/multi) detects every assignment of order[0..k-1] and hands
// it in through Seed, so Process skips those positions entirely — no
// unary evaluation, no buffering, no PM creation below state k. The
// engine then behaves, match-for-match, like an unseeded engine on the
// same plan, provided the runner seeds every prefix assignment before
// the event that completed it is handed to Process (the lazy
// registration scan picks up suffix events that arrived earlier, and
// later suffix events extend seeded PMs through the eager path exactly
// as they would natively-created ones).
//
// k must leave at least one position to the engine (0 < k < number of
// core positions).
func (g *Engine) SetSharedPrefix(k int) error {
	if k <= 0 || k >= g.n {
		return fmt.Errorf("nfa: shared prefix %d out of range (1..%d)", k, g.n-1)
	}
	g.prefix = k
	return nil
}

// Seed injects one prefix assignment produced by a shared prefix
// runner: evs[j] is the event assigned to the plan's order position j,
// for j < k (SetSharedPrefix). The events must satisfy the prefix's
// unary and pairwise constraints (the runner evaluated them) and stay
// stable for the engine's retention horizon — Seed retains the
// pointers without interning, like SetExternal. Assignments whose
// timestamp span exceeds this pattern's window are dropped here, so a
// runner sized to the widest subscriber window can fan one completion
// to every subscriber unfiltered.
func (g *Engine) Seed(evs []*event.Event) {
	m := g.getPM()
	m.filled = g.prefix
	for j := 0; j < g.prefix; j++ {
		e := evs[j]
		m.evs[g.op.Order[j]] = e
		if j == 0 || e.TS < m.minTS {
			m.minTS = e.TS
		}
		if j == 0 || e.TS > m.maxTS {
			m.maxTS = e.TS
		}
	}
	if m.maxTS-m.minTS > g.pat.Window {
		g.putPM(m)
		return
	}
	g.pmCreated++
	g.register(m)
}

// Advance moves the watermark forward, resolving parked matches and
// periodically pruning buffers and expired partial matches.
func (g *Engine) Advance(ts event.Time) {
	if ts < g.watermark {
		return
	}
	g.watermark = ts
	g.res.Advance(ts)
	if ts-g.lastPrune >= g.pat.Window/2 {
		g.prune()
		g.lastPrune = ts
	}
}

func (g *Engine) prune() {
	horizon := g.watermark - g.retention
	for _, b := range g.bufs {
		if b != nil {
			b.Prune(horizon)
		}
	}
	for s, list := range g.states {
		kept := list[:0]
		for _, m := range list {
			if g.expired(m) {
				g.putPM(m)
				continue
			}
			kept = append(kept, m)
		}
		for i := len(kept); i < len(list); i++ {
			list[i] = nil
		}
		g.states[s] = kept
	}
	g.live = 0
	for _, list := range g.states {
		g.live += len(list)
	}
	// Every holder — buffers, PMs, the resolver (pruned in Advance) — is
	// now at or inside the horizon, so whole chunks behind it can go.
	g.arena.Release(horizon)
}

// expired reports whether the PM can no longer be extended: every future
// event is too far from its earliest element.
func (g *Engine) expired(m *pm) bool {
	return g.watermark-m.minTS > g.pat.Window
}

// getPM returns a pooled (or fresh) zeroed partial match.
func (g *Engine) getPM() *pm {
	if n := len(g.pmFree); n > 0 {
		m := g.pmFree[n-1]
		g.pmFree[n-1] = nil
		g.pmFree = g.pmFree[:n-1]
		return m
	}
	return &pm{evs: make([]*event.Event, len(g.pat.Positions))}
}

// putPM recycles a dead partial match. Safe because PMs never escape the
// engine: completion hands the resolver a copy of the assignment, never
// the PM's own array.
func (g *Engine) putPM(m *pm) {
	clear(m.evs)
	g.pmFree = append(g.pmFree, m)
}

// Process feeds one input event. Events must arrive in non-decreasing
// timestamp order. The event is copied if kept (unless SetExternal is in
// effect); the caller may reuse it.
func (g *Engine) Process(e *event.Event) { g.process(e, 0) }

// ProcessMasked is Process with a precomputed unary predicate mask (see
// pattern.ScanUnarySpan): when mask carries pattern.MaskValid, bit p
// replaces the per-event UnaryOk evaluation for position p. A zero mask
// falls back to per-event evaluation, so callers without masks pass 0.
func (g *Engine) ProcessMasked(e *event.Event, mask uint32) { g.process(e, mask) }

// ProcessBatch feeds a whole batch of stable events through one call.
// masks, when non-nil, is parallel to evs and carries precomputed unary
// masks. Emission order is identical to per-event Process calls.
func (g *Engine) ProcessBatch(evs []*event.Event, masks []uint32) {
	for i, e := range evs {
		var m uint32
		if masks != nil {
			m = masks[i]
		}
		g.process(e, m)
	}
}

func (g *Engine) process(e *event.Event, mask uint32) {
	if e.TS > g.watermark {
		g.Advance(e.TS)
	}
	var ae *event.Event // arena copy, interned at most once
	for _, p := range g.pat.PositionsOfType(e.Type) {
		k := g.orderIdx[p]
		if k < 0 {
			// Residual position: the resolver buffers it for scope
			// resolution (it applies the position's unary predicates).
			if g.wantsResidual(p, e, mask) {
				if ae == nil {
					ae = g.intern(e)
				}
				g.res.AddResidual(p, ae)
			}
			continue
		}
		if k < g.prefix {
			continue // fed externally through Seed
		}
		if !g.unaryOk(p, e, mask) {
			continue
		}
		if ae == nil {
			ae = g.intern(e)
		}
		if k == 0 {
			g.create(p, ae)
		} else {
			g.extendState(k, p, ae)
		}
		g.bufs[p].Add(ae)
	}
}

// intern stores the event for retention: an arena copy normally, the
// caller's stable pointer under SetExternal.
func (g *Engine) intern(e *event.Event) *event.Event {
	if g.external {
		return e
	}
	return g.arena.Intern(e)
}

// unaryOk consults the precomputed mask bit when one is present and falls
// back to evaluating position p's compiled unary predicates.
func (g *Engine) unaryOk(p int, e *event.Event, mask uint32) bool {
	if mask&pattern.MaskValid != 0 {
		return pattern.MaskOk(mask, p)
	}
	return g.pat.UnaryOk(p, e, &g.predEvals)
}

// wantsResidual is Resolver.Wants with the mask consulted for the unary
// predicates when present.
func (g *Engine) wantsResidual(p int, e *event.Event, mask uint32) bool {
	if mask&pattern.MaskValid != 0 {
		return g.res.Buffered(p) && pattern.MaskOk(mask, p)
	}
	return g.res.Wants(p, e)
}

// extendState offers event e (at position p = order[k]) to every PM
// waiting at state k, removing expired PMs on the way.
func (g *Engine) extendState(k, p int, e *event.Event) {
	list := g.states[k]
	for i := 0; i < len(list); {
		m := list[i]
		if g.expired(m) {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			list = list[:len(list)-1]
			g.live--
			g.putPM(m)
			continue
		}
		if g.canExtend(k, m, e) {
			g.fork(m, p, e)
		}
		i++
	}
	g.states[k] = list
}

// canExtend checks whether event e can fill state k's position of PM m:
// one window check against the PM's timestamp span, then the state's
// compiled check list (temporal relation + oriented predicates against
// each filled position).
func (g *Engine) canExtend(k int, m *pm, e *event.Event) bool {
	if m.maxTS-e.TS > g.pat.Window || e.TS-m.minTS > g.pat.Window {
		return false
	}
	for i := range g.checks[k] {
		c := &g.checks[k][i]
		if !c.pc.Ok(e, m.evs[c.pos], &g.predEvals) {
			return false
		}
	}
	return true
}

// create starts a new PM from an event at the plan's first position.
func (g *Engine) create(p int, e *event.Event) {
	m := g.getPM()
	m.filled = 1
	m.minTS = e.TS
	m.maxTS = e.TS
	m.evs[p] = e
	g.pmCreated++
	g.register(m)
}

// fork copies parent, adds e at position p and registers the child.
func (g *Engine) fork(parent *pm, p int, e *event.Event) {
	m := g.getPM()
	copy(m.evs, parent.evs)
	m.filled = parent.filled + 1
	m.minTS = parent.minTS
	m.maxTS = parent.maxTS
	if e.TS < m.minTS {
		m.minTS = e.TS
	}
	if e.TS > m.maxTS {
		m.maxTS = e.TS
	}
	m.evs[p] = e
	g.pmCreated++
	g.register(m)
}

// register completes the PM if full; otherwise it parks it at its state
// and lazily scans the next position's history for events that already
// arrived.
func (g *Engine) register(m *pm) {
	if m.filled == g.n {
		g.complete(m)
		g.putPM(m)
		return
	}
	s := m.filled
	g.states[s] = append(g.states[s], m)
	g.live++
	if g.live > g.peak {
		g.peak = g.live
	}
	next := g.op.Order[s]
	// Lazy path: events of the next position that arrived before this PM
	// was created. Future events arrive through extendState.
	g.bufs[next].Scan(m.maxTS-g.pat.Window, m.minTS+g.pat.Window, false, false, func(c *event.Event) bool {
		if g.canExtend(s, m, c) {
			g.fork(m, next, c)
		}
		return true
	})
}

// complete applies the migration emit filter and hands the core match to
// the resolver (which copies the assignment; the PM is recycled by the
// caller).
func (g *Engine) complete(m *pm) {
	if g.emitBefore > 0 {
		old := false
		for _, ev := range m.evs {
			if ev != nil && ev.Seq < g.emitBefore {
				old = true
				break
			}
		}
		if !old {
			g.suppressed++
			return
		}
	}
	g.res.OnCoreComplete(m.evs, g.watermark)
}

// Finish force-resolves all parked matches, treating the stream as ended.
func (g *Engine) Finish() { g.res.Flush() }

// LivePMs reports the current number of registered partial matches (the
// shedding layer's load signal).
func (g *Engine) LivePMs() int { return g.live }

// HotTypes marks (in mark, indexed by event type) every type that could
// extend a live partial match right now: for each non-empty NFA state,
// the type of the next position in the plan's order. An event of a hot
// type may be the one that advances — or completes — an in-flight match,
// so the pattern-aware shedding policy protects it.
func (g *Engine) HotTypes(mark []bool) {
	for s := 1; s < g.n; s++ {
		if len(g.states[s]) == 0 {
			continue
		}
		if t := g.pat.Positions[g.op.Order[s]].Type; t < len(mark) {
			mark[t] = true
		}
	}
}

// HotKeys calls add with key(ev) for one representative event of every
// live partial match. For key-connected (partitionable) patterns every
// event of a PM carries the same key value, so one representative
// identifies the PM's entity.
func (g *Engine) HotKeys(key func(*event.Event) uint64, add func(uint64)) {
	for _, list := range g.states {
		for _, m := range list {
			for _, e := range m.evs {
				if e != nil {
					add(key(e))
					break
				}
			}
		}
	}
}

// Stats returns a snapshot of the engine's counters.
func (g *Engine) Stats() Stats {
	return Stats{
		PMCreated:  g.pmCreated,
		PredEvals:  g.predEvals + g.res.PredEvals,
		Emitted:    g.res.Emitted,
		Dropped:    g.res.Dropped,
		Suppressed: g.suppressed,
		LivePMs:    g.live,
		PeakPMs:    g.peak,
		Pending:    g.res.PendingCount(),
	}
}
