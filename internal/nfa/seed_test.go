package nfa

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// prefixOf builds the standalone pattern of the first k positions of the
// x-equality sequence chain (the shape a shared prefix runner detects).
func prefixOf(s *event.Schema, k int, window event.Time) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, window)
	for i := 0; i < k; i++ {
		b.Event(i)
	}
	for i := 0; i+1 < k; i++ {
		b.WherePred(pattern.Pred{L: i, R: i + 1, AttrL: 0, AttrR: 0, Op: pattern.EQ})
	}
	return b.MustBuild()
}

// matchKey renders a match as its constituent sequence numbers, the
// plan-independent identity the comparisons sort by.
func matchKey(m *match.Match) string {
	key := ""
	for _, ev := range m.Events {
		if ev != nil {
			key += fmt.Sprintf("%d,", ev.Seq)
		} else {
			key += "_,"
		}
	}
	for _, set := range m.Kleene {
		key += "["
		for _, ev := range set {
			key += fmt.Sprintf("%d,", ev.Seq)
		}
		key += "]"
	}
	return key
}

func sortedKeys(ms []*match.Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = matchKey(m)
	}
	sort.Strings(keys)
	return keys
}

// TestSeededPrefixEquivalence drives the seeding contract directly: a
// runner engine over the 2-position prefix pattern feeds Seed on a
// subscriber whose first two order positions are disabled, and the
// subscriber's match set must equal a plain engine's on every stream.
func TestSeededPrefixEquivalence(t *testing.T) {
	const k = 2
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(300 + trial)))
		s := mkSchema(4)
		window := event.Time(40 + 30*(trial%3))
		pat := seqChainPattern(s, 4, window)
		evs := genStream(r, s, []int{3, 2, 2, 3}, 600, 3, 4)

		want, _ := runEngine(pat, plan.NewOrderPlan(pat.Core()), evs)

		// Runner window is deliberately wider than the subscriber's:
		// Seed must filter over-span assignments itself.
		runnerPat := prefixOf(s, k, 2*window)
		var got []*match.Match
		sub := New(pat, plan.NewOrderPlan(pat.Core()), func(m *match.Match) {
			got = append(got, &match.Match{
				Events: append([]*event.Event(nil), m.Events...),
			})
		})
		if err := sub.SetSharedPrefix(k); err != nil {
			t.Fatal(err)
		}
		sub.SetExternal(true)
		runner := New(runnerPat, plan.NewOrderPlan(runnerPat.Core()), func(m *match.Match) {
			sub.Seed(m.Events)
		})
		runner.SetExternal(true)
		runner.SetOwnedEmit(true)
		for i := range evs {
			runner.Process(&evs[i])
			sub.Process(&evs[i])
		}
		runner.Finish()
		sub.Finish()

		if wk, gk := sortedKeys(want), sortedKeys(got); !equalStrings(wk, gk) {
			t.Fatalf("trial %d: seeded subscriber diverged: want %d matches, got %d\nwant: %v\ngot:  %v",
				trial, len(wk), len(gk), wk, gk)
		}
	}
}

// TestSeededPrefixRejectsBadK pins the SetSharedPrefix bounds.
func TestSeededPrefixRejectsBadK(t *testing.T) {
	s := mkSchema(3)
	pat := seqChainPattern(s, 3, 100)
	g := New(pat, plan.NewOrderPlan(pat.Core()), nil)
	for _, k := range []int{0, -1, 3, 4} {
		if err := g.SetSharedPrefix(k); err == nil {
			t.Fatalf("SetSharedPrefix(%d) accepted", k)
		}
	}
	if err := g.SetSharedPrefix(2); err != nil {
		t.Fatalf("SetSharedPrefix(2): %v", err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
