package nfa

import (
	"math/rand"
	"testing"

	"acep/internal/match"
	"acep/internal/plan"
)

// BenchmarkProcess measures raw event processing on a size-4 sequence
// pattern under ascending- and descending-rate plan orders, exposing the
// cost gap that plan quality creates (the quantity adaptation optimizes).
func BenchmarkProcess(b *testing.B) {
	s := mkSchema(4)
	pat := seqChainPattern(s, 4, 100)
	r := rand.New(rand.NewSource(1))
	evs := genStream(r, s, []int{12, 6, 2, 1}, 50000, 3, 2)
	for _, tc := range []struct {
		name  string
		order []int
	}{
		{"ascending-rates", []int{3, 2, 1, 0}},
		{"descending-rates", []int{0, 1, 2, 3}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := New(pat, plan.NewOrderPlan(tc.order), func(*match.Match) {})
				for j := range evs {
					g.Process(&evs[j])
				}
				g.Finish()
			}
			b.SetBytes(int64(len(evs)))
		})
	}
}

// BenchmarkExtend isolates the partial-match extension path.
func BenchmarkExtend(b *testing.B) {
	s := mkSchema(2)
	pat := seqChainPattern(s, 2, 1000)
	r := rand.New(rand.NewSource(2))
	evs := genStream(r, s, []int{1, 1}, 20000, 2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := New(pat, plan.NewOrderPlan([]int{0, 1}), func(*match.Match) {})
		for j := range evs {
			g.Process(&evs[j])
		}
		g.Finish()
	}
}
