package nfa

import (
	"testing"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/plan"
)

// TestIntrospection drives SEQ(A, B, C) in declaration order and checks
// the shedding hooks: after an A arrives, the next position's type (B) is
// hot and the PM's key value is reported; after B extends it, C becomes
// hot as well (the original PM still waits at state 1).
func TestIntrospection(t *testing.T) {
	s := mkSchema(3)
	pat := seqChainPattern(s, 3, 100)
	g := New(pat, plan.NewOrderPlan([]int{0, 1, 2}), func(*match.Match) {})

	key := func(ev *event.Event) uint64 { return uint64(ev.Attrs[0]) }
	hot := func() []bool {
		mark := make([]bool, 3)
		g.HotTypes(mark)
		return mark
	}
	keys := func() map[uint64]bool {
		out := map[uint64]bool{}
		g.HotKeys(key, func(k uint64) { out[k] = true })
		return out
	}

	if g.LivePMs() != 0 {
		t.Fatalf("LivePMs = %d before any event", g.LivePMs())
	}
	if m := hot(); m[0] || m[1] || m[2] {
		t.Fatalf("hot types %v before any event", m)
	}

	a := s.MustNew(0, 10, 7)
	a.Seq = 1
	g.Process(&a)
	if g.LivePMs() != 1 {
		t.Fatalf("LivePMs = %d after A", g.LivePMs())
	}
	if m := hot(); !m[1] || m[0] || m[2] {
		t.Fatalf("hot types after A = %v, want only B", m)
	}
	if k := keys(); !k[7] || len(k) != 1 {
		t.Fatalf("hot keys after A = %v, want {7}", k)
	}

	b := s.MustNew(1, 20, 7) // same key: extends the A-PM
	b.Seq = 2
	g.Process(&b)
	// The A-PM still waits at state 1 and its A+B fork waits at state 2.
	if g.LivePMs() != 2 {
		t.Fatalf("LivePMs = %d after B", g.LivePMs())
	}
	if m := hot(); !m[1] || !m[2] {
		t.Fatalf("hot types after B = %v, want B and C", m)
	}
	if k := keys(); !k[7] {
		t.Fatalf("hot keys after B = %v, want 7 present", k)
	}
}
