package nfa

import (
	"testing"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// ltChainPattern is SEQ(A,B,C,...) where each adjacent pair requires a
// strictly increasing x, so one stream shape (x increasing) matches
// densely and its mirror (x decreasing) never matches at all.
func ltChainPattern(s *event.Schema, n int, window event.Time, kleeneAt int) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, window)
	for i := 0; i < n; i++ {
		b.Event(i)
	}
	if kleeneAt >= 0 {
		b.Kleene(kleeneAt)
	}
	for i := 0; i+1 < n; i++ {
		b.WherePred(pattern.Pred{L: i, R: i + 1, AttrL: 0, AttrR: 0, Op: pattern.LT})
	}
	return b.MustBuild()
}

// stepper feeds batches of round-robin-typed events through an engine,
// reusing one event struct (the engine interns what it keeps, so the
// caller's event is reusable immediately). sign picks increasing
// (matching) or decreasing (never-matching) attribute values.
type stepper struct {
	g    *Engine
	ev   event.Event
	ts   event.Time
	seq  uint64
	n    int
	sign float64
}

func newStepper(g *Engine, types int, sign float64) *stepper {
	return &stepper{g: g, ev: event.Event{Attrs: make([]float64, 1)}, n: types, sign: sign}
}

func (s *stepper) run(events int) {
	for i := 0; i < events; i++ {
		s.ts++
		s.seq++
		s.ev.Type = int(s.seq) % s.n
		s.ev.TS = s.ts
		s.ev.Seq = s.seq
		s.ev.Attrs[0] = s.sign * float64(s.seq)
		s.g.Process(&s.ev)
	}
}

// TestProcessZeroAllocsNoMatch: after warm-up, a no-match stream must
// drive the NFA hot path — dispatch, PM creation, extension attempts,
// buffer appends, pruning, arena interning — with zero heap allocations
// per event. This is the allocation-regression guard for the pooled /
// arena'd engine; any new per-event allocation fails it.
func TestProcessZeroAllocsNoMatch(t *testing.T) {
	s := mkSchema(3)
	pat := ltChainPattern(s, 3, 60, -1)
	g := New(pat, plan.NewOrderPlan([]int{0, 1, 2}), func(*match.Match) {
		t.Fatal("no-match stream produced a match")
	})
	g.SetOwnedEmit(true)
	st := newStepper(g, 3, -1)
	st.run(20000) // reach steady state: buffers, states and arena at capacity
	allocs := testing.AllocsPerRun(10, func() { st.run(2000) })
	if allocs != 0 {
		t.Fatalf("steady-state no-match Process allocated %.2f times per 2000-event run; want 0", allocs)
	}
}

// TestProcessBoundedAllocsMatching: a densely matching stream (every
// in-window combination completes) must stay within a small constant
// allocation budget per event in owned-emit mode — completion, residual
// resolution and emission all run off pools.
func TestProcessBoundedAllocsMatching(t *testing.T) {
	s := mkSchema(3)
	pat := ltChainPattern(s, 3, 24, -1)
	var matches uint64
	g := New(pat, plan.NewOrderPlan([]int{0, 1, 2}), func(*match.Match) { matches++ })
	g.SetOwnedEmit(true)
	st := newStepper(g, 3, 1)
	st.run(20000)
	if matches == 0 {
		t.Fatal("matching stream produced no matches; the bound would be vacuous")
	}
	const perRun = 2000
	allocs := testing.AllocsPerRun(10, func() { st.run(perRun) })
	if perEvent := allocs / perRun; perEvent > 0.05 {
		t.Fatalf("steady-state matching Process allocated %.4f/event; want <= 0.05", perEvent)
	}
}

// TestProcessBoundedAllocsKleene exercises the residual path: Kleene
// resolution parks matches, scans residual buffers and emits Kleene
// sets, all of which must come from the resolver's pools in owned mode.
func TestProcessBoundedAllocsKleene(t *testing.T) {
	s := mkSchema(3)
	pat := ltChainPattern(s, 3, 24, 1)
	var matches uint64
	g := New(pat, plan.NewOrderPlan([]int{0, 2}), func(m *match.Match) {
		matches++
		if m.Kleene == nil || len(m.Kleene[1]) == 0 {
			t.Fatal("kleene match without a set")
		}
	})
	g.SetOwnedEmit(true)
	st := newStepper(g, 3, 1)
	st.run(20000)
	if matches == 0 {
		t.Fatal("kleene stream produced no matches; the bound would be vacuous")
	}
	const perRun = 2000
	allocs := testing.AllocsPerRun(10, func() { st.run(perRun) })
	if perEvent := allocs / perRun; perEvent > 0.05 {
		t.Fatalf("steady-state kleene Process allocated %.4f/event; want <= 0.05", perEvent)
	}
}
