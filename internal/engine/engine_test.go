package engine

import (
	"reflect"
	"testing"

	"acep/internal/core"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/oracle"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// run executes a full stream through an adaptive engine and returns the
// sorted match keys plus metrics.
func run(t *testing.T, pat *pattern.Pattern, evs []event.Event, cfg Config) ([]string, Metrics) {
	t.Helper()
	var out []*match.Match
	cfg.OnMatch = func(m *match.Match) { out = append(out, m) }
	e, err := New(pat, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := range evs {
		e.Process(&evs[i])
	}
	e.Finish()
	return oracle.Keys(out), e.Metrics()
}

func policies() map[string]func() core.Policy {
	return map[string]func() core.Policy{
		"static":        func() core.Policy { return core.Static{} },
		"unconditional": func() core.Policy { return core.Unconditional{} },
		"threshold":     func() core.Policy { return &core.Threshold{T: 0.3} },
		"invariant":     func() core.Policy { return &core.Invariant{} },
		"invariant-d":   func() core.Policy { return &core.Invariant{D: 0.2, K: 2} },
	}
}

// TestPolicyIndependence is the central correctness property of an
// adaptive CEP system: the adaptation policy (and hence the sequence of
// plan migrations) must never change the set of detected matches.
func TestPolicyIndependence(t *testing.T) {
	w := gen.Traffic(TrafficSmall())
	window := event.Time(60)
	for _, kind := range []gen.Kind{gen.Sequence, gen.Conjunction, gen.Negation, gen.Kleene} {
		pat, err := w.Pattern(kind, 3, window)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []Model{GreedyNFA, ZStreamTree} {
			var want []string
			first := true
			for name, mk := range policies() {
				got, m := run(t, pat, w.Events, Config{
					Model:      model,
					Policy:     mk(),
					CheckEvery: 200,
				})
				if first {
					want = got
					first = false
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v/%v/%s: %d matches vs %d (reopts=%d)",
						kind, model, name, len(got), len(want), m.Reoptimizations)
				}
			}
		}
	}
}

// TrafficSmall is a small but nontrivial workload with one extreme shift.
func TrafficSmall() gen.TrafficConfig {
	return gen.TrafficConfig{Types: 6, Events: 6000, Seed: 11, Shifts: 1, MeanGap: 3}
}

// TestMatchesOracle validates the full adaptive pipeline (with plan
// migrations happening mid-stream) against the brute-force oracle.
func TestMatchesOracle(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 5, Events: 1500, Seed: 23, Shifts: 1, MeanGap: 4})
	pat, err := w.Pattern(gen.Sequence, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Keys(oracle.Matches(pat, w.Events))
	for _, model := range []Model{GreedyNFA, ZStreamTree} {
		got, m := run(t, pat, w.Events, Config{
			Model:      model,
			Policy:     core.Unconditional{}, // max migration churn
			CheckEvery: 100,
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: %d matches, oracle %d (reopts %d)", model, len(got), len(want), m.Reoptimizations)
		}
		if m.Reoptimizations == 0 {
			t.Fatalf("%v: expected at least one migration in this test", model)
		}
	}
}

// TestAdaptationReactsToShift checks that the invariant policy detects an
// extreme rate shift and replaces the plan.
func TestAdaptationReactsToShift(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 6, Events: 20000, Seed: 31, Shifts: 2, MeanGap: 2})
	pat, err := w.Pattern(gen.Sequence, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	_, m := run(t, pat, w.Events, Config{
		Model:      GreedyNFA,
		Policy:     &core.Invariant{},
		CheckEvery: 500,
	})
	if m.Reoptimizations == 0 {
		t.Fatal("invariant policy never adapted across two extreme shifts")
	}
	// The static policy must not adapt.
	_, ms := run(t, pat, w.Events, Config{
		Model:      GreedyNFA,
		Policy:     core.Static{},
		CheckEvery: 500,
	})
	if ms.Reoptimizations != 0 || ms.PlanGenerations != 1 {
		t.Fatalf("static policy adapted: %+v", ms)
	}
}

// TestInvariantDistanceSuppressesNoise: on a stable stream, the basic
// d=0 method replans on estimator noise (the behaviour §3.4 motivates
// eliminating), while a nonzero distance absorbs it almost entirely.
func TestInvariantDistanceSuppressesNoise(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 6, Events: 20000, Seed: 41, Shifts: 0, MeanGap: 2, Skew: 1.5})
	pat, err := w.Pattern(gen.Sequence, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	_, basic := run(t, pat, w.Events, Config{
		Model:      GreedyNFA,
		Policy:     &core.Invariant{},
		CheckEvery: 500,
	})
	_, dist := run(t, pat, w.Events, Config{
		Model:      GreedyNFA,
		Policy:     &core.Invariant{D: 0.3},
		CheckEvery: 500,
	})
	// One replan is legitimate even with distance: the initial plan was
	// built from empty statistics and the first check corrects it.
	if dist.Reoptimizations > 1 {
		t.Fatalf("d=0.3 replanned %d times on a stable stream", dist.Reoptimizations)
	}
	if dist.Reoptimizations > basic.Reoptimizations {
		t.Fatalf("distance increased replans: %d > %d", dist.Reoptimizations, basic.Reoptimizations)
	}
}

// TestUnconditionalRunsAEveryCheck verifies the baseline's defining
// behaviour and its overhead accounting.
func TestUnconditionalRunsAEveryCheck(t *testing.T) {
	w := gen.Traffic(TrafficSmall())
	pat, err := w.Pattern(gen.Sequence, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	_, m := run(t, pat, w.Events, Config{
		Model:      GreedyNFA,
		Policy:     core.Unconditional{},
		CheckEvery: 200,
	})
	if m.DecisionCalls != m.PlanGenerations-1 { // -1: the initial Generate
		t.Fatalf("decision calls %d, plan generations %d", m.DecisionCalls, m.PlanGenerations)
	}
	if m.PlanTime <= 0 {
		t.Fatal("plan time not accounted")
	}
	if m.Overhead(1) <= 0 {
		t.Fatal("overhead not positive")
	}
}

// TestStaticCheaperDecisions: static never calls A after initialization.
func TestStaticDecisionAccounting(t *testing.T) {
	w := gen.Traffic(TrafficSmall())
	pat, _ := w.Pattern(gen.Sequence, 3, 60)
	_, m := run(t, pat, w.Events, Config{
		Model:      GreedyNFA,
		Policy:     core.Static{},
		CheckEvery: 200,
	})
	if m.PlanGenerations != 1 {
		t.Fatalf("PlanGenerations = %d; want 1", m.PlanGenerations)
	}
	if m.DecisionCalls == 0 {
		t.Fatal("D never consulted")
	}
	if m.Events != uint64(len(w.Events)) {
		t.Fatalf("Events = %d", m.Events)
	}
}

// TestOrPattern runs a composite pattern end to end with per-disjunct
// adaptation and compares against the oracle.
func TestOrPattern(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 7, Events: 2000, Seed: 51, Shifts: 1, MeanGap: 4})
	pat, err := w.Pattern(gen.Composite, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Keys(oracle.Matches(pat, w.Events))
	got, m := run(t, pat, w.Events, Config{
		Model:      GreedyNFA,
		NewPolicy:  func() core.Policy { return &core.Invariant{} },
		CheckEvery: 300,
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OR: %d matches, oracle %d", len(got), len(want))
	}
	if m.Events != uint64(len(w.Events))*3 { // three sub-runners
		t.Fatalf("Events = %d", m.Events)
	}

	// A shared stateful policy across disjuncts must be rejected.
	if _, err := New(pat, Config{Policy: &core.Invariant{}}); err == nil {
		t.Fatal("shared policy across OR disjuncts accepted")
	}
}

// TestZStreamModelUsesTreePlans sanity-checks plan wiring.
func TestModelPlanWiring(t *testing.T) {
	w := gen.Traffic(TrafficSmall())
	pat, _ := w.Pattern(gen.Sequence, 3, 60)
	e, err := New(pat, Config{Model: ZStreamTree, Policy: core.Static{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.CurrentPlans()[0].(*plan.TreePlan); !ok {
		t.Fatalf("plan type %T", e.CurrentPlans()[0])
	}
	e2, _ := New(pat, Config{Model: GreedyNFA, Policy: core.Static{}})
	if _, ok := e2.CurrentPlans()[0].(*plan.OrderPlan); !ok {
		t.Fatalf("plan type %T", e2.CurrentPlans()[0])
	}
	if _, err := New(pat, Config{Model: Model(9)}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if GreedyNFA.String() != "greedy-nfa" || ZStreamTree.String() != "zstream-tree" {
		t.Error("model names wrong")
	}
}

// TestDefaultPolicyIsInvariant checks the default configuration.
func TestDefaultPolicyIsInvariant(t *testing.T) {
	w := gen.Traffic(TrafficSmall())
	pat, _ := w.Pattern(gen.Sequence, 3, 60)
	got, _ := run(t, pat, w.Events, Config{}) // all defaults
	want, _ := run(t, pat, w.Events, Config{Policy: &core.Invariant{}})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("default configuration diverged from explicit invariant policy")
	}
}

// TestMigrationSeedsResiduals: a negation spanning a migration boundary
// must still veto matches after the plan switch (resolver seeding).
func TestMigrationSeedsResiduals(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 6, Events: 4000, Seed: 61, Shifts: 1, MeanGap: 3})
	pat, err := w.Pattern(gen.Negation, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Keys(oracle.Matches(pat, w.Events))
	got, m := run(t, pat, w.Events, Config{
		Model:      GreedyNFA,
		Policy:     core.Unconditional{},
		CheckEvery: 50, // migrate aggressively
	})
	if m.Reoptimizations == 0 {
		t.Skip("no migration occurred; scenario not exercised")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("negation across migration: %d matches, oracle %d", len(got), len(want))
	}
}

// TestMetricsAggregation sanity-checks counters.
func TestMetricsAggregation(t *testing.T) {
	var m Metrics
	m.add(Metrics{Events: 1, Matches: 2, PeakPMs: 5, Reoptimizations: 1})
	m.add(Metrics{Events: 2, PeakPMs: 3})
	if m.Events != 3 || m.Matches != 2 || m.PeakPMs != 5 || m.Reoptimizations != 1 {
		t.Fatalf("%+v", m)
	}
	if m.Overhead(0) != 0 {
		t.Fatal("zero-total overhead must be 0")
	}
}
