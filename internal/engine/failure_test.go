package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"acep/internal/core"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/oracle"
	"acep/internal/stream"
)

// TestLateEventsDropped injects out-of-order events and checks that the
// engine discards them, counts them, and keeps the rest of the stream's
// semantics intact.
func TestLateEventsDropped(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 5, Events: 2000, Seed: 81, MeanGap: 4})
	pat, err := w.Pattern(gen.Sequence, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle 5% of events backwards in time.
	evs := append([]event.Event(nil), w.Events...)
	r := rand.New(rand.NewSource(3))
	var lateCount uint64
	for i := 100; i < len(evs); i += 20 {
		evs[i].TS = evs[i-50].TS // jump backwards
		lateCount++
	}
	got, m := run(t, pat, evs, Config{Policy: &core.Invariant{}, CheckEvery: 500})
	if m.LateDropped != lateCount {
		t.Fatalf("LateDropped = %d; want %d", m.LateDropped, lateCount)
	}
	// The surviving stream equals the stream with late events removed.
	var clean []event.Event
	wm := event.Time(0)
	for _, e := range evs {
		if e.TS < wm {
			continue
		}
		wm = e.TS
		clean = append(clean, e)
	}
	want := oracle.Keys(oracle.Matches(pat, clean))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%d matches; oracle on cleaned stream %d", len(got), len(want))
	}
	_ = r

	// Re-sorting with the stream package recovers full detection.
	sorted := append([]event.Event(nil), evs...)
	stream.SortByTime(sorted)
	got2, m2 := run(t, pat, sorted, Config{Policy: &core.Invariant{}, CheckEvery: 500})
	if m2.LateDropped != 0 {
		t.Fatalf("sorted stream still dropped %d", m2.LateDropped)
	}
	want2 := oracle.Keys(oracle.Matches(pat, sorted))
	if !reflect.DeepEqual(got2, want2) {
		t.Fatalf("sorted: %d matches; oracle %d", len(got2), len(want2))
	}
}

// TestEstimatorNoiseRobustness injects a pathological statistics
// configuration (tiny sample, tiny stats window -> maximal estimator
// noise) and checks the invariant policy still detects the identical
// match set and the engine completes without excessive churn.
func TestEstimatorNoiseRobustness(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 5, Events: 6000, Seed: 91, Shifts: 1, MeanGap: 3})
	pat, err := w.Pattern(gen.Sequence, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := run(t, pat, w.Events, Config{Policy: core.Static{}, CheckEvery: 300})

	noisy := Config{
		Policy:     &core.Invariant{},
		CheckEvery: 300,
	}
	noisy.Stats.SampleSize = 2
	noisy.Stats.Window = 30 // barely a handful of events
	got, m := run(t, pat, w.Events, noisy)
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("noisy estimator changed semantics: %d vs %d matches", len(got), len(base))
	}
	// Sanity: the run completed with a bounded number of replans (the
	// engine must not melt down under estimator noise).
	if m.Reoptimizations > m.DecisionCalls {
		t.Fatalf("replans %d exceed decision calls %d", m.Reoptimizations, m.DecisionCalls)
	}
}
