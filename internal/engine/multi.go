package engine

import (
	"fmt"
	"sync"

	"acep/internal/core"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// Multi runs several independent patterns over one input stream, each
// with its own evaluation plan, statistics and adaptation policy. This is
// the multi-pattern ACEP setting without subexpression sharing, to which
// the paper notes its method "can be trivially applied" (§7); shared-plan
// multi-pattern optimization is explicitly out of scope there and here.
type Multi struct {
	engines []*Engine
	names   []string
	// mu serializes the Multi-level onMatch callback, which is shared by
	// every pattern's engine and therefore contended when the patterns run
	// on separate goroutines (Feeder). Uncontended in serial mode.
	mu sync.Mutex
}

// MultiSpec declares one pattern of a Multi engine.
type MultiSpec struct {
	// Name labels the pattern in callbacks and metrics.
	Name string
	// Pattern is the compiled pattern.
	Pattern *pattern.Pattern
	// Config assembles this pattern's engine. OnMatch may be nil if the
	// MultiConfig-level callback is used.
	Config Config
}

// MultiMatch is a match tagged with the pattern that produced it.
type MultiMatch struct {
	Pattern string
	Match   *match.Match
}

// NewMulti builds a multi-pattern engine. onMatch, when non-nil, receives
// every match from every pattern (in addition to any per-pattern
// OnMatch callbacks).
func NewMulti(specs []MultiSpec, onMatch func(MultiMatch)) (*Multi, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("engine: Multi needs at least one pattern")
	}
	m := &Multi{}
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("engine: Multi pattern with empty name")
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("engine: duplicate Multi pattern name %q", spec.Name)
		}
		seen[spec.Name] = true
		cfg := spec.Config
		inner := cfg.OnMatch
		name := spec.Name
		if onMatch != nil {
			cfg.OnMatch = func(mt *match.Match) {
				if inner != nil {
					inner(mt)
				}
				m.mu.Lock()
				onMatch(MultiMatch{Pattern: name, Match: mt})
				m.mu.Unlock()
			}
		}
		e, err := New(spec.Pattern, cfg)
		if err != nil {
			return nil, fmt.Errorf("engine: Multi pattern %q: %w", spec.Name, err)
		}
		m.engines = append(m.engines, e)
		m.names = append(m.names, spec.Name)
	}
	return m, nil
}

// Process feeds one event to every pattern's engine.
func (m *Multi) Process(ev *event.Event) {
	for _, e := range m.engines {
		e.Process(ev)
	}
}

// Finish flushes all engines at end of stream.
func (m *Multi) Finish() {
	for _, e := range m.engines {
		e.Finish()
	}
}

// Metrics returns per-pattern metrics keyed by name.
func (m *Multi) Metrics() map[string]Metrics {
	out := make(map[string]Metrics, len(m.engines))
	for i, e := range m.engines {
		out[m.names[i]] = e.Metrics()
	}
	return out
}

// Plans returns the current plans keyed by pattern name.
func (m *Multi) Plans() map[string][]plan.Plan {
	out := make(map[string][]plan.Plan, len(m.engines))
	for i, e := range m.engines {
		out[m.names[i]] = e.CurrentPlans()
	}
	return out
}

// Feeder fans one input stream across the Multi's patterns, one worker
// goroutine per pattern, handing events over in shared read-only batches
// to amortize synchronization. Independent patterns need no cross-pattern
// ordering, so unlike the shard layer there is no merge barrier: each
// engine consumes the stream at its own pace and per-pattern match
// callbacks fire on that pattern's goroutine (serially per pattern). The
// Multi-level callback passed to NewMulti is internally serialized and
// may be shared as-is.
//
// Use one Feeder per stream pass:
//
//	f := m.Feeder(256)
//	for i := range events {
//		f.Process(&events[i])
//	}
//	f.Finish() // drains workers and finishes every engine
//
// Feeder.Finish replaces Multi.Finish; do not call both. Process and
// Finish must be called from a single goroutine.
type Feeder struct {
	m     *Multi
	chans []chan []event.Event
	buf   []event.Event
	batch int
	wg    sync.WaitGroup
	done  bool
}

// Feeder starts one worker goroutine per pattern and returns the
// ingestion handle. batch is the number of events per handoff (default
// 256 when <= 0).
func (m *Multi) Feeder(batch int) *Feeder {
	if batch <= 0 {
		batch = 256
	}
	f := &Feeder{m: m, batch: batch}
	for _, e := range m.engines {
		ch := make(chan []event.Event, 4)
		f.chans = append(f.chans, ch)
		f.wg.Add(1)
		go func(e *Engine, ch chan []event.Event) {
			defer f.wg.Done()
			for b := range ch {
				for i := range b {
					e.Process(&b[i])
				}
			}
		}(e, ch)
	}
	return f
}

// Process buffers one event, dispatching the batch to every pattern's
// worker when full.
func (f *Feeder) Process(ev *event.Event) {
	if f.done {
		panic("engine: Feeder.Process after Finish")
	}
	f.buf = append(f.buf, *ev)
	if len(f.buf) >= f.batch {
		f.flush()
	}
}

// flush hands the current batch (a single shared read-only slice) to all
// workers.
func (f *Feeder) flush() {
	if len(f.buf) == 0 {
		return
	}
	b := f.buf
	f.buf = make([]event.Event, 0, f.batch)
	for _, ch := range f.chans {
		ch <- b
	}
}

// Finish flushes the final partial batch, waits for every worker to
// drain, and finishes every engine. Idempotent.
func (f *Feeder) Finish() {
	if f.done {
		return
	}
	f.done = true
	f.flush()
	for _, ch := range f.chans {
		close(ch)
	}
	f.wg.Wait()
	f.m.Finish()
}

// defaultMultiPolicy keeps NewMulti convenient in tests and examples.
var _ = core.Policy(nil)
