package engine

import (
	"fmt"

	"acep/internal/core"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// Multi runs several independent patterns over one input stream, each
// with its own evaluation plan, statistics and adaptation policy. This is
// the multi-pattern ACEP setting without subexpression sharing, to which
// the paper notes its method "can be trivially applied" (§7); shared-plan
// multi-pattern optimization is explicitly out of scope there and here.
type Multi struct {
	engines []*Engine
	names   []string
}

// MultiSpec declares one pattern of a Multi engine.
type MultiSpec struct {
	// Name labels the pattern in callbacks and metrics.
	Name string
	// Pattern is the compiled pattern.
	Pattern *pattern.Pattern
	// Config assembles this pattern's engine. OnMatch may be nil if the
	// MultiConfig-level callback is used.
	Config Config
}

// MultiMatch is a match tagged with the pattern that produced it.
type MultiMatch struct {
	Pattern string
	Match   *match.Match
}

// NewMulti builds a multi-pattern engine. onMatch, when non-nil, receives
// every match from every pattern (in addition to any per-pattern
// OnMatch callbacks).
func NewMulti(specs []MultiSpec, onMatch func(MultiMatch)) (*Multi, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("engine: Multi needs at least one pattern")
	}
	m := &Multi{}
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("engine: Multi pattern with empty name")
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("engine: duplicate Multi pattern name %q", spec.Name)
		}
		seen[spec.Name] = true
		cfg := spec.Config
		inner := cfg.OnMatch
		name := spec.Name
		if onMatch != nil {
			cfg.OnMatch = func(mt *match.Match) {
				if inner != nil {
					inner(mt)
				}
				onMatch(MultiMatch{Pattern: name, Match: mt})
			}
		}
		e, err := New(spec.Pattern, cfg)
		if err != nil {
			return nil, fmt.Errorf("engine: Multi pattern %q: %w", spec.Name, err)
		}
		m.engines = append(m.engines, e)
		m.names = append(m.names, spec.Name)
	}
	return m, nil
}

// Process feeds one event to every pattern's engine.
func (m *Multi) Process(ev *event.Event) {
	for _, e := range m.engines {
		e.Process(ev)
	}
}

// Finish flushes all engines at end of stream.
func (m *Multi) Finish() {
	for _, e := range m.engines {
		e.Finish()
	}
}

// Metrics returns per-pattern metrics keyed by name.
func (m *Multi) Metrics() map[string]Metrics {
	out := make(map[string]Metrics, len(m.engines))
	for i, e := range m.engines {
		out[m.names[i]] = e.Metrics()
	}
	return out
}

// Plans returns the current plans keyed by pattern name.
func (m *Multi) Plans() map[string][]plan.Plan {
	out := make(map[string][]plan.Plan, len(m.engines))
	for i, e := range m.engines {
		out[m.names[i]] = e.CurrentPlans()
	}
	return out
}

// defaultMultiPolicy keeps NewMulti convenient in tests and examples.
var _ = core.Policy(nil)
