package engine

import (
	"reflect"
	"sort"
	"testing"

	"acep/internal/core"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/oracle"
)

// multiSpecs builds three independent patterns over one traffic stream.
func multiSpecs(t *testing.T, w *gen.Workload) []MultiSpec {
	t.Helper()
	mk := func(kind gen.Kind) *MultiSpec {
		pat, err := w.Pattern(kind, 3, 60)
		if err != nil {
			t.Fatal(err)
		}
		return &MultiSpec{Pattern: pat, Config: Config{
			CheckEvery: 300,
			NewPolicy:  func() core.Policy { return &core.Invariant{} },
		}}
	}
	seq, conj, neg := mk(gen.Sequence), mk(gen.Conjunction), mk(gen.Negation)
	seq.Name, conj.Name, neg.Name = "seq", "conj", "neg"
	return []MultiSpec{*seq, *conj, *neg}
}

// TestFeederMatchesSerial: the parallel Multi path must produce exactly
// the serial path's per-pattern match sets.
func TestFeederMatchesSerial(t *testing.T) {
	w := gen.Traffic(TrafficSmall())

	collect := func(parallel bool) map[string][]string {
		got := map[string][]string{}
		m, err := NewMulti(multiSpecs(t, w), func(mm MultiMatch) {
			got[mm.Pattern] = append(got[mm.Pattern], mm.Match.Key())
		})
		if err != nil {
			t.Fatal(err)
		}
		if parallel {
			f := m.Feeder(128)
			for i := range w.Events {
				f.Process(&w.Events[i])
			}
			f.Finish()
			f.Finish() // idempotent
		} else {
			for i := range w.Events {
				m.Process(&w.Events[i])
			}
			m.Finish()
		}
		for _, keys := range got {
			sort.Strings(keys)
		}
		return got
	}

	serial := collect(false)
	par := collect(true)
	if len(serial) == 0 {
		t.Fatal("no patterns matched; test is vacuous")
	}
	if !reflect.DeepEqual(serial, par) {
		for name := range serial {
			t.Logf("%s: serial %d parallel %d", name, len(serial[name]), len(par[name]))
		}
		t.Fatal("parallel Multi diverged from serial")
	}
}

// TestFeederAgainstOracle ties the parallel path to ground truth on a
// smaller stream, and checks per-pattern metrics survive the fan-out.
func TestFeederAgainstOracle(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 6, Events: 1500, Seed: 77, Shifts: 1, MeanGap: 3})
	specs := multiSpecs(t, w)

	var matches []*match.Match
	perPattern := map[string]int{}
	m, err := NewMulti(specs, func(mm MultiMatch) {
		matches = append(matches, mm.Match)
		perPattern[mm.Pattern]++
	})
	if err != nil {
		t.Fatal(err)
	}
	f := m.Feeder(64)
	for i := range w.Events {
		f.Process(&w.Events[i])
	}
	f.Finish()

	var want []string
	for _, spec := range specs {
		want = append(want, oracle.Keys(oracle.Matches(spec.Pattern, w.Events))...)
	}
	sort.Strings(want)
	if got := oracle.Keys(matches); !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel Multi: %d matches, oracle %d", len(got), len(want))
	}

	met := m.Metrics()
	if len(met) != 3 {
		t.Fatalf("%d metric entries", len(met))
	}
	for name, em := range met {
		if em.Events == 0 {
			t.Fatalf("%s: no events counted", name)
		}
		if uint64(perPattern[name]) != em.Matches {
			t.Fatalf("%s: callback saw %d matches, metrics say %d", name, perPattern[name], em.Matches)
		}
	}
}
