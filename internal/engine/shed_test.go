package engine

import (
	"reflect"
	"testing"

	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/oracle"
	"acep/internal/shed"
)

// TestSheddingNoneIdentity is the safety property of the overload-control
// layer: with the None policy configured (monitor running, zero drops)
// every engine model produces exactly the match set of an engine without
// any shedding — which in turn equals the brute-force oracle's.
func TestSheddingNoneIdentity(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 5, Events: 1500, Seed: 23, Shifts: 1, MeanGap: 4})
	pat, err := w.Pattern(gen.Sequence, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Keys(oracle.Matches(pat, w.Events))
	for _, model := range []Model{GreedyNFA, ZStreamTree} {
		plain, _ := run(t, pat, w.Events, Config{Model: model, CheckEvery: 100})
		shedded, m := run(t, pat, w.Events, Config{
			Model:      model,
			CheckEvery: 100,
			Shedding: shed.Config{
				Policy: shed.None{},
				// A budget the stream exceeds immediately: the monitor
				// reports overload, yet None must not drop anything.
				Budget:       shed.Budget{LivePMs: 1},
				RefreshEvery: 16,
			},
		})
		if !reflect.DeepEqual(plain, want) {
			t.Fatalf("%v: plain engine deviates from oracle", model)
		}
		if !reflect.DeepEqual(shedded, want) {
			t.Fatalf("%v: None-policy engine deviates from oracle: %d vs %d matches",
				model, len(shedded), len(want))
		}
		if m.EventsShed != 0 {
			t.Fatalf("%v: None policy shed %d events", model, m.EventsShed)
		}
		if m.Events != uint64(len(w.Events)) {
			t.Fatalf("%v: processed %d of %d events", model, m.Events, len(w.Events))
		}
	}
}

// TestSheddingDropsUnderOverload checks the accounting contract: shed
// events are counted, never processed, and the recall estimate reflects
// the measured drop rate.
func TestSheddingDropsUnderOverload(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 5, Events: 4000, Seed: 7, Shifts: 1, MeanGap: 4})
	pat, err := w.Pattern(gen.Sequence, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _ := run(t, pat, w.Events, Config{CheckEvery: 100})
	for _, model := range []Model{GreedyNFA, ZStreamTree} {
		got, m := run(t, pat, w.Events, Config{
			Model:      model,
			CheckEvery: 100,
			Shedding: shed.Config{
				Policy:       shed.Random{P: 0.4},
				Budget:       shed.Budget{LivePMs: 1},
				RefreshEvery: 16,
			},
		})
		if m.EventsShed == 0 {
			t.Fatalf("%v: overloaded Random(0.4) shed nothing", model)
		}
		if m.Events+m.EventsShed != uint64(len(w.Events)) {
			t.Fatalf("%v: %d processed + %d shed != %d arrived",
				model, m.Events, m.EventsShed, len(w.Events))
		}
		if len(got) > len(baseline) {
			t.Fatalf("%v: shedding grew the match set: %d > %d", model, len(got), len(baseline))
		}
		if r := m.ShedRate(); r <= 0.2 || r >= 0.6 {
			t.Fatalf("%v: shed rate %.3f implausible for Random(0.4)", model, r)
		}
		if est := m.RecallEstimate(3); est <= 0 || est >= 1 {
			t.Fatalf("%v: recall estimate %.3f out of (0,1)", model, est)
		}
	}
}

// TestSheddingNegationSafety: dropping negation events could create false
// matches; the shedder must keep them even at drop probability 1.
func TestSheddingNegationSafety(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 5, Events: 2000, Seed: 5, Shifts: 1, MeanGap: 4})
	pat, err := w.Pattern(gen.Negation, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _ := run(t, pat, w.Events, Config{CheckEvery: 100})
	got, m := run(t, pat, w.Events, Config{
		CheckEvery: 100,
		Shedding: shed.Config{
			Policy:       shed.Random{P: 1},
			Budget:       shed.Budget{LivePMs: 1},
			RefreshEvery: 16,
		},
	})
	if m.EventsShed == 0 {
		t.Fatal("Random(1) shed nothing under overload")
	}
	// Every surviving match must be a true match of the full stream:
	// the shedded match set is a subset of the baseline.
	want := map[string]bool{}
	for _, k := range baseline {
		want[k] = true
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("shedding surfaced a false match %s", k)
		}
	}
}

// TestSheddingMetricsMerge checks the shard-layer aggregation path.
func TestSheddingMetricsMerge(t *testing.T) {
	a := Metrics{Events: 40, EventsArrived: 48, EventsShed: 8, QueueDropped: 2}
	b := Metrics{Events: 35, EventsArrived: 47, EventsShed: 12, QueueDropped: 3}
	a.Merge(b)
	if a.EventsShed != 20 || a.QueueDropped != 5 {
		t.Fatalf("merge: %+v", a)
	}
	// 95 reached the engines + 5 queue-dropped = 100 arrived; 25 lost.
	if r := a.ShedRate(); r != 0.25 {
		t.Fatalf("shed rate = %v, want 0.25", r)
	}
	if est := a.RecallEstimate(2); est != 0.75*0.75 {
		t.Fatalf("recall estimate = %v, want 0.5625", est)
	}
}

// TestSheddingORAccounting: OR patterns count Events once per disjunct
// runner, so ShedRate must be computed from the engine-level arrival
// count (the old Events-based denominator understated the rate ~2x for a
// three-disjunct pattern).
func TestSheddingORAccounting(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 9, Events: 4000, Seed: 9, MeanGap: 3})
	pat, err := w.Pattern(gen.Composite, 3, 50) // OR of three sequences
	if err != nil {
		t.Fatal(err)
	}
	_, m := run(t, pat, w.Events, Config{
		CheckEvery: 200,
		Shedding: shed.Config{
			Policy:       shed.Random{P: 0.4},
			Budget:       shed.Budget{LivePMs: 1},
			RefreshEvery: 16,
		},
	})
	if m.EventsArrived != uint64(len(w.Events)) {
		t.Fatalf("EventsArrived = %d, want %d", m.EventsArrived, len(w.Events))
	}
	if m.Events <= m.EventsArrived {
		t.Fatalf("per-runner Events %d not above arrivals %d for a 3-disjunct pattern", m.Events, m.EventsArrived)
	}
	want := float64(m.EventsShed) / float64(len(w.Events))
	if got := m.ShedRate(); got != want {
		t.Fatalf("ShedRate = %v, want %v", got, want)
	}
	if got := m.ShedRate(); got < 0.3 || got > 0.5 {
		t.Fatalf("ShedRate = %v implausible for Random(0.4) under permanent overload", got)
	}
}

// TestEngineProbe exercises the engine-level introspection surface the
// shedder samples, across a plan migration (draining evaluators keep
// contributing their live PMs).
func TestEngineProbe(t *testing.T) {
	w := gen.Traffic(TrafficSmall())
	pat, err := w.Pattern(gen.Sequence, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(pat, Config{CheckEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	sawLive := false
	for i := range w.Events {
		e.Process(&w.Events[i])
		if e.LivePMs() > 0 {
			sawLive = true
		}
	}
	if !sawLive {
		t.Fatal("LivePMs never positive over a 6k-event stream")
	}
	mark := make([]bool, 6)
	e.HotTypes(mark)
	keys := 0
	e.HotKeys(func(ev *event.Event) uint64 { return ev.Seq }, func(uint64) { keys++ })
	if e.LivePMs() > 0 && keys == 0 {
		t.Fatal("live PMs present but no hot keys reported")
	}
	snaps := e.LastSnapshots()
	if len(snaps) != 1 || snaps[0] == nil {
		t.Fatalf("snapshots %v after 6k events with CheckEvery=100", snaps)
	}
	e.Finish()
}
