package engine

import (
	"reflect"
	"testing"

	"acep/internal/core"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/oracle"
)

func TestMultiPattern(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 8, Events: 4000, Seed: 71, Shifts: 1, MeanGap: 3})
	seq, err := w.Pattern(gen.Sequence, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	conj, err := w.Pattern(gen.Conjunction, 3, 50)
	if err != nil {
		t.Fatal(err)
	}

	var got []MultiMatch
	m, err := NewMulti([]MultiSpec{
		{Name: "seq", Pattern: seq, Config: Config{Policy: &core.Invariant{}, CheckEvery: 500}},
		{Name: "conj", Pattern: conj, Config: Config{Model: ZStreamTree, Policy: &core.Invariant{}, CheckEvery: 500}},
	}, func(mm MultiMatch) { got = append(got, mm) })
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		m.Process(&w.Events[i])
	}
	m.Finish()

	// Split matches by pattern and validate each against the oracle.
	byPat := map[string][]string{}
	for _, mm := range got {
		byPat[mm.Pattern] = append(byPat[mm.Pattern], mm.Match.Key())
	}
	for name, pat := range map[string]interface{ Size() int }{"seq": seq, "conj": conj} {
		_ = pat
		_ = name
	}
	wantSeq := oracle.Keys(oracle.Matches(seq, w.Events))
	wantConj := oracle.Keys(oracle.Matches(conj, w.Events))
	sortStrings := func(ss []string) []string {
		out := append([]string(nil), ss...)
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[j] < out[i] {
					out[i], out[j] = out[j], out[i]
				}
			}
		}
		return out
	}
	if !reflect.DeepEqual(sortStrings(byPat["seq"]), wantSeq) {
		t.Fatalf("seq: %d matches, oracle %d", len(byPat["seq"]), len(wantSeq))
	}
	if !reflect.DeepEqual(sortStrings(byPat["conj"]), wantConj) {
		t.Fatalf("conj: %d matches, oracle %d", len(byPat["conj"]), len(wantConj))
	}

	mets := m.Metrics()
	if len(mets) != 2 || mets["seq"].Events != uint64(len(w.Events)) {
		t.Fatalf("metrics: %+v", mets)
	}
	plans := m.Plans()
	if len(plans["seq"]) != 1 || len(plans["conj"]) != 1 {
		t.Fatalf("plans: %+v", plans)
	}
}

func TestMultiValidation(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 5, Events: 10, Seed: 1})
	pat, _ := w.Pattern(gen.Sequence, 3, 50)
	if _, err := NewMulti(nil, nil); err == nil {
		t.Error("empty specs accepted")
	}
	if _, err := NewMulti([]MultiSpec{{Name: "", Pattern: pat}}, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewMulti([]MultiSpec{
		{Name: "a", Pattern: pat, Config: Config{Policy: core.Static{}}},
		{Name: "a", Pattern: pat, Config: Config{Policy: core.Static{}}},
	}, nil); err == nil {
		t.Error("duplicate name accepted")
	}
	// Per-pattern OnMatch still fires alongside the global callback.
	var local, global int
	me, err := NewMulti([]MultiSpec{{
		Name:    "a",
		Pattern: pat,
		Config: Config{
			Policy:  core.Static{},
			OnMatch: func(*match.Match) { local++ },
		},
	}}, func(MultiMatch) { global++ })
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events
	for i := range evs {
		me.Process(&evs[i])
	}
	me.Finish()
	if local != global {
		t.Fatalf("local %d != global %d", local, global)
	}
}
