package engine

import (
	"time"

	"acep/internal/core"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/nfa"
	"acep/internal/pattern"
	"acep/internal/plan"
	"acep/internal/stats"
	"acep/internal/tree"
)

// runner is the detection-adaptation loop of one (non-OR) pattern.
type runner struct {
	pat    *pattern.Pattern
	cfg    Config
	policy core.Policy
	est    *stats.Estimator

	cur      evaluator
	curPlan  plan.Plan
	draining []drainingEngine

	watermark  event.Time
	lastSeq    uint64
	sinceCheck int
	lastSnap   *stats.Snapshot // most recent adaptation-check snapshot

	metrics Metrics
	retired nfa.Stats // counters accumulated from retired evaluators
}

// drainingEngine is a pre-migration evaluator still serving matches that
// contain events from its era.
type drainingEngine struct {
	eval evaluator
	// retireAt is the watermark past which no match owned by this
	// evaluator can still complete (migration time + window).
	retireAt event.Time
}

func newRunner(pat *pattern.Pattern, cfg Config, policy core.Policy) (*runner, error) {
	est, err := stats.NewEstimator(pat, cfg.Stats)
	if err != nil {
		return nil, err
	}
	r := &runner{pat: pat, cfg: cfg, policy: policy, est: est}
	var initial *stats.Snapshot
	if cfg.InitialStats != nil {
		initial = cfg.InitialStats(pat)
	}
	if initial == nil {
		initial = stats.NewSnapshot(pat.NumPositions())
	}
	res := cfg.Algorithm.Generate(pat, initial)
	r.metrics.PlanGenerations++
	r.curPlan = res.Plan
	r.cur = r.buildEvaluator(res.Plan)
	r.policy.Install(res.Trace, initial)
	return r, nil
}

func (r *runner) buildEvaluator(p plan.Plan) evaluator {
	emit := func(m *match.Match) {
		r.metrics.Matches++
		if r.cfg.OnMatch != nil {
			r.cfg.OnMatch(m)
		}
	}
	var ev evaluator
	switch pl := p.(type) {
	case *plan.OrderPlan:
		ev = nfa.New(r.pat, pl, emit)
	case *plan.TreePlan:
		ev = tree.New(r.pat, pl, emit)
	default:
		panic("engine: unknown plan type")
	}
	// Applied on every build — including migration rebuilds — so the
	// ingest contract survives plan changes.
	if r.cfg.ExternalEvents {
		ev.SetExternal(true)
	}
	if r.cfg.OwnedEmit {
		ev.SetOwnedEmit(true)
	}
	return ev
}

func (r *runner) process(ev *event.Event, mask uint32) {
	r.metrics.Events++
	if ev.TS < r.watermark {
		// The evaluation structures index their buffers by timestamp
		// order; a late event cannot be inserted consistently. Drop it
		// and account for it — callers that need late tolerance should
		// reorder with the stream package first.
		r.metrics.LateDropped++
		return
	}
	r.lastSeq = ev.Seq
	r.watermark = ev.TS
	r.est.Observe(ev)

	// Drain pre-migration evaluators; retire those whose era has closed.
	if len(r.draining) > 0 {
		kept := r.draining[:0]
		for _, d := range r.draining {
			if r.watermark > d.retireAt {
				d.eval.Advance(r.watermark) // final flush of parked matches
				r.accumulate(d.eval)
				continue
			}
			d.eval.ProcessMasked(ev, mask)
			kept = append(kept, d)
		}
		for i := len(kept); i < len(r.draining); i++ {
			r.draining[i] = drainingEngine{}
		}
		r.draining = kept
	}

	r.cur.ProcessMasked(ev, mask)

	r.sinceCheck++
	if r.sinceCheck >= r.cfg.CheckEvery {
		r.sinceCheck = 0
		r.adaptationCheck()
	}
}

// adaptationCheck is one iteration of the optimizer side of Algorithm 1:
// refresh statistics, consult D, possibly run A and deploy.
func (r *runner) adaptationCheck() {
	t0 := time.Now()
	snap := r.est.Snapshot(r.watermark)
	r.lastSnap = snap
	r.metrics.StatTime += time.Since(t0)

	t1 := time.Now()
	should := r.policy.ShouldReoptimize(snap)
	r.metrics.DecisionTime += time.Since(t1)
	r.metrics.DecisionCalls++
	if !should {
		return
	}

	t2 := time.Now()
	res := r.cfg.Algorithm.Generate(r.pat, snap)
	curCost := r.curPlan.Cost(snap)
	newCost := res.Plan.Cost(snap)
	better := !res.Plan.Equal(r.curPlan) && newCost < curCost
	r.metrics.PlanTime += time.Since(t2)
	r.metrics.PlanGenerations++

	// Meta-adaptive policies (§3.4(3)) learn from the attempt's outcome.
	if obs, ok := r.policy.(core.OutcomeObserver); ok {
		gain := 0.0
		if better && curCost > 0 {
			gain = (curCost - newCost) / curCost
		}
		obs.ObserveOutcome(gain)
	}

	// Whether or not the plan is deployed, the policy re-anchors on the
	// fresh trace and statistics (paper §3.2: a violation invalidates the
	// current invariants; the threshold baseline likewise resets after a
	// reoptimization attempt).
	r.policy.Install(res.Trace, snap)
	if !better {
		return
	}
	r.migrate(res.Plan)
	r.metrics.Reoptimizations++
}

// migrate deploys a new plan using the §2.2 protocol. The current
// evaluator keeps running restricted to matches containing at least one
// pre-migration event; the new evaluator starts with empty core state
// (all its matches are post-migration by construction) but inherits the
// residual buffers so negation and Kleene scopes spanning the migration
// point stay correct.
func (r *runner) migrate(p plan.Plan) {
	boundary := r.lastSeq + 1
	r.cur.SetEmitOnlyBefore(boundary)
	r.draining = append(r.draining, drainingEngine{
		eval:     r.cur,
		retireAt: r.watermark + r.pat.Window,
	})
	next := r.buildEvaluator(p)
	next.Resolver().SeedFrom(r.cur.Resolver())
	next.Advance(r.watermark)
	r.cur = next
	r.curPlan = p
}

// accumulate folds a retired evaluator's counters into the runner.
func (r *runner) accumulate(ev evaluator) {
	st := ev.Stats()
	r.retired.PMCreated += st.PMCreated
	r.retired.PredEvals += st.PredEvals
	if st.PeakPMs > r.retired.PeakPMs {
		r.retired.PeakPMs = st.PeakPMs
	}
}

func (r *runner) finish() {
	for _, d := range r.draining {
		d.eval.Finish()
		r.accumulate(d.eval)
	}
	r.draining = nil
	r.cur.Finish()
}

// snapshotMetrics combines loop metrics with evaluator counters.
func (r *runner) snapshotMetrics() Metrics {
	m := r.metrics
	m.PMCreated = r.retired.PMCreated
	m.PredEvals = r.retired.PredEvals
	m.PeakPMs = r.retired.PeakPMs
	add := func(st nfa.Stats) {
		m.PMCreated += st.PMCreated
		m.PredEvals += st.PredEvals
		if st.PeakPMs > m.PeakPMs {
			m.PeakPMs = st.PeakPMs
		}
	}
	add(r.cur.Stats())
	for _, d := range r.draining {
		add(d.eval.Stats())
	}
	return m
}
