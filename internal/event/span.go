package event

// Span describes a columnar run of consecutively stored events that share
// one type and one attribute stride: the attribute blocks of events
// First..First+N-1 of a batch sit back to back in Attrs, so attribute k of
// the run's i-th event is Attrs[i*Stride+k]. Batch decoders produce spans
// as a by-product of filling an arena chunk's flat attribute buffer in
// place; columnar predicate scans (pattern.ScanUnarySpan) consume them to
// sweep one attribute across a whole run with stride arithmetic instead of
// chasing per-event slices.
//
// A span never crosses a chunk boundary, so Attrs aliases a single chunk's
// backing buffer and stays valid exactly as long as pointers into that
// chunk do. Events with no attributes (Stride 0) form spans with an empty
// Attrs slice; scans skip them.
type Span struct {
	Type   int
	First  int // index of the run's first event within its batch
	N      int // number of events in the run
	Stride int // attribute values per event
	// Attrs holds the run's N*Stride attribute values, flat.
	Attrs []float64
}
