// Package event defines the primitive event model shared by all layers of
// the library: typed events carrying numeric attributes and a timestamp.
//
// Events are the data items accepted from input streams. Each event has a
// well-defined type (an index into a Schema), an occurrence timestamp in
// logical milliseconds, and a fixed set of numeric attributes whose names
// are registered per type in the Schema. A monotonically increasing
// sequence number (assigned by the stream layer) gives every event a
// distinct identity, which the match machinery uses to guarantee that the
// same event instance never occupies two positions of one match.
package event

import (
	"fmt"
	"strings"
)

// Time is a logical timestamp in milliseconds. Streams deliver events in
// non-decreasing Time order; the engine's watermark advances with it.
type Time int64

// Millisecond is the base resolution of Time.
const Millisecond Time = 1

// Second is 1000 logical milliseconds.
const Second Time = 1000 * Millisecond

// Minute is 60 logical seconds.
const Minute Time = 60 * Second

// Event is a single primitive event. The zero value is not meaningful;
// construct events through a Schema (or the gen package).
type Event struct {
	// Type is the event type index registered in the Schema.
	Type int
	// TS is the occurrence timestamp.
	TS Time
	// Seq is a stream-unique, monotonically increasing sequence number.
	Seq uint64
	// Attrs holds the attribute values, indexed per the type's attribute
	// registration order in the Schema.
	Attrs []float64
}

// Attr returns the i-th attribute value. It panics if i is out of range,
// mirroring slice semantics; pattern validation rejects bad indices before
// evaluation ever runs.
func (e *Event) Attr(i int) float64 { return e.Attrs[i] }

// String renders the event compactly for logs and test failures.
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ev{t=%d ts=%d seq=%d attrs=%v}", e.Type, e.TS, e.Seq, e.Attrs)
	return b.String()
}

// TypeInfo describes one registered event type.
type TypeInfo struct {
	Name  string
	Attrs []string // attribute names, in index order
}

// Schema is the registry of event types and their attributes. A Schema is
// immutable after construction (all registration happens through
// NewSchema or AddType before first use) and therefore safe for concurrent
// readers.
type Schema struct {
	types  []TypeInfo
	byName map[string]int
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{byName: make(map[string]int)}
}

// AddType registers a new event type with the given attribute names and
// returns its type index. Duplicate type names are rejected.
func (s *Schema) AddType(name string, attrs ...string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("event: empty type name")
	}
	if _, dup := s.byName[name]; dup {
		return 0, fmt.Errorf("event: duplicate type %q", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return 0, fmt.Errorf("event: type %q has an empty attribute name", name)
		}
		if seen[a] {
			return 0, fmt.Errorf("event: type %q declares attribute %q twice", name, a)
		}
		seen[a] = true
	}
	id := len(s.types)
	s.types = append(s.types, TypeInfo{Name: name, Attrs: append([]string(nil), attrs...)})
	s.byName[name] = id
	return id, nil
}

// MustAddType is AddType that panics on error; intended for tests and
// examples where the schema is a literal.
func (s *Schema) MustAddType(name string, attrs ...string) int {
	id, err := s.AddType(name, attrs...)
	if err != nil {
		panic(err)
	}
	return id
}

// NumTypes reports how many event types are registered.
func (s *Schema) NumTypes() int { return len(s.types) }

// TypeName returns the name of type id, or "?" if out of range.
func (s *Schema) TypeName(id int) string {
	if id < 0 || id >= len(s.types) {
		return "?"
	}
	return s.types[id].Name
}

// TypeByName returns the index of the named type.
func (s *Schema) TypeByName(name string) (int, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// AttrIndex resolves an attribute name for the given type.
func (s *Schema) AttrIndex(typeID int, attr string) (int, bool) {
	if typeID < 0 || typeID >= len(s.types) {
		return 0, false
	}
	for i, a := range s.types[typeID].Attrs {
		if a == attr {
			return i, true
		}
	}
	return 0, false
}

// Attrs returns a copy of the attribute names registered for the type,
// in index order; nil if the type id is out of range.
func (s *Schema) Attrs(typeID int) []string {
	if typeID < 0 || typeID >= len(s.types) {
		return nil
	}
	return append([]string(nil), s.types[typeID].Attrs...)
}

// NumAttrs reports the number of attributes registered for the type.
func (s *Schema) NumAttrs(typeID int) int {
	if typeID < 0 || typeID >= len(s.types) {
		return 0
	}
	return len(s.types[typeID].Attrs)
}

// New constructs an event of the given type, validating the attribute
// count against the schema.
func (s *Schema) New(typeID int, ts Time, attrs ...float64) (Event, error) {
	if typeID < 0 || typeID >= len(s.types) {
		return Event{}, fmt.Errorf("event: unknown type id %d", typeID)
	}
	if len(attrs) != len(s.types[typeID].Attrs) {
		return Event{}, fmt.Errorf("event: type %q wants %d attrs, got %d",
			s.types[typeID].Name, len(s.types[typeID].Attrs), len(attrs))
	}
	return Event{Type: typeID, TS: ts, Attrs: append([]float64(nil), attrs...)}, nil
}

// MustNew is New that panics on error.
func (s *Schema) MustNew(typeID int, ts Time, attrs ...float64) Event {
	ev, err := s.New(typeID, ts, attrs...)
	if err != nil {
		panic(err)
	}
	return ev
}
