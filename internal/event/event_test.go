package event

import (
	"strings"
	"testing"
)

func TestSchemaAddType(t *testing.T) {
	s := NewSchema()
	a, err := s.AddType("A", "x", "y")
	if err != nil {
		t.Fatalf("AddType A: %v", err)
	}
	b, err := s.AddType("B")
	if err != nil {
		t.Fatalf("AddType B: %v", err)
	}
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d; want 0,1", a, b)
	}
	if got := s.NumTypes(); got != 2 {
		t.Fatalf("NumTypes = %d; want 2", got)
	}
	if got := s.TypeName(a); got != "A" {
		t.Fatalf("TypeName(0) = %q", got)
	}
	if id, ok := s.TypeByName("B"); !ok || id != b {
		t.Fatalf("TypeByName(B) = %d,%v", id, ok)
	}
	if _, ok := s.TypeByName("C"); ok {
		t.Fatal("TypeByName(C) should miss")
	}
}

func TestSchemaAddTypeErrors(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddType(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.AddType("A", "x", "x"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := s.AddType("A", ""); err == nil {
		t.Error("empty attribute accepted")
	}
	s.MustAddType("A", "x")
	if _, err := s.AddType("A", "y"); err == nil {
		t.Error("duplicate type accepted")
	}
}

func TestSchemaAttrIndex(t *testing.T) {
	s := NewSchema()
	a := s.MustAddType("A", "x", "y", "z")
	for i, name := range []string{"x", "y", "z"} {
		idx, ok := s.AttrIndex(a, name)
		if !ok || idx != i {
			t.Errorf("AttrIndex(%q) = %d,%v; want %d,true", name, idx, ok, i)
		}
	}
	if _, ok := s.AttrIndex(a, "w"); ok {
		t.Error("AttrIndex(w) should miss")
	}
	if _, ok := s.AttrIndex(99, "x"); ok {
		t.Error("AttrIndex on bad type should miss")
	}
	if n := s.NumAttrs(a); n != 3 {
		t.Errorf("NumAttrs = %d; want 3", n)
	}
	if n := s.NumAttrs(42); n != 0 {
		t.Errorf("NumAttrs(bad) = %d; want 0", n)
	}
}

func TestSchemaNew(t *testing.T) {
	s := NewSchema()
	a := s.MustAddType("A", "x", "y")
	ev, err := s.New(a, 123, 1.5, -2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if ev.Type != a || ev.TS != 123 || ev.Attr(0) != 1.5 || ev.Attr(1) != -2 {
		t.Fatalf("bad event %v", ev)
	}
	if _, err := s.New(a, 1, 1.0); err == nil {
		t.Error("wrong attr count accepted")
	}
	if _, err := s.New(7, 1); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	s := NewSchema()
	s.MustAddType("A", "x")
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on bad input")
		}
	}()
	s.MustNew(0, 0) // missing attr
}

func TestMustAddTypePanics(t *testing.T) {
	s := NewSchema()
	s.MustAddType("A")
	defer func() {
		if recover() == nil {
			t.Error("MustAddType did not panic on duplicate")
		}
	}()
	s.MustAddType("A")
}

func TestNewCopiesAttrs(t *testing.T) {
	s := NewSchema()
	a := s.MustAddType("A", "x")
	attrs := []float64{1}
	ev := s.MustNew(a, 1, attrs...)
	attrs[0] = 99
	if ev.Attr(0) != 1 {
		t.Error("New must copy the attrs slice")
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Type: 2, TS: 5, Seq: 7, Attrs: []float64{1}}
	str := ev.String()
	for _, want := range []string{"t=2", "ts=5", "seq=7"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q; missing %q", str, want)
		}
	}
}

func TestTypeNameOutOfRange(t *testing.T) {
	s := NewSchema()
	if got := s.TypeName(-1); got != "?" {
		t.Errorf("TypeName(-1) = %q", got)
	}
	if got := s.TypeName(3); got != "?" {
		t.Errorf("TypeName(3) = %q", got)
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1000 || Minute != 60000 {
		t.Fatalf("time units wrong: second=%d minute=%d", Second, Minute)
	}
}
