package acep_test

import (
	"testing"

	"acep"
)

// TestFacadeQuickstart exercises the public API end to end: the paper's
// Example 1 through the root package only.
func TestFacadeQuickstart(t *testing.T) {
	schema := acep.NewSchema()
	camA := schema.MustAddType("A", "person_id")
	camB := schema.MustAddType("B", "person_id")
	camC := schema.MustAddType("C", "person_id")

	pb := acep.NewPattern(schema, acep.Seq, 10*acep.Minute)
	a := pb.Event(camA)
	b := pb.Event(camB)
	c := pb.Event(camC)
	pb.WhereEq(a, "person_id", b, "person_id")
	pb.WhereEq(b, "person_id", c, "person_id")
	pat, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}

	var matches []*acep.Match
	eng, err := acep.NewEngine(pat, acep.Config{
		Policy:  acep.NewInvariantPolicy(acep.InvariantOptions{K: 2, Distance: 0.1}),
		OnMatch: func(m *acep.Match) { matches = append(matches, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	events := []acep.Event{
		{Type: camA, TS: 1 * acep.Minute, Seq: 1, Attrs: []float64{7}},
		{Type: camB, TS: 3 * acep.Minute, Seq: 2, Attrs: []float64{7}},
		{Type: camC, TS: 6 * acep.Minute, Seq: 3, Attrs: []float64{7}},
		{Type: camC, TS: 7 * acep.Minute, Seq: 4, Attrs: []float64{9}},
	}
	for i := range events {
		eng.Process(&events[i])
	}
	eng.Finish()
	if len(matches) != 1 {
		t.Fatalf("matches = %d; want 1", len(matches))
	}
	if got := eng.Metrics().Matches; got != 1 {
		t.Fatalf("metrics.Matches = %d", got)
	}
}

// TestFacadePolicies builds every exposed policy and runs a tiny stream.
func TestFacadePolicies(t *testing.T) {
	w := acep.NewTrafficWorkload(acep.TrafficConfig{Types: 5, Events: 3000, Seed: 1})
	pat, err := w.Pattern(acep.SequencePatterns, 3, 100*acep.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	policies := []acep.Policy{
		acep.NewStaticPolicy(),
		acep.NewUnconditionalPolicy(),
		acep.NewThresholdPolicy(0.3),
		acep.NewInvariantPolicy(acep.InvariantOptions{AutoDistance: true}),
	}
	var counts []uint64
	for _, p := range policies {
		eng, err := acep.NewEngine(pat, acep.Config{Policy: p, CheckEvery: 300})
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		counts = append(counts, eng.Metrics().Matches)
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("policies disagree on matches: %v", counts)
		}
	}
}

// TestFacadeOr exercises disjunctions and the ZStream model through the
// façade.
func TestFacadeOr(t *testing.T) {
	w := acep.NewStocksWorkload(acep.StocksConfig{Types: 6, Events: 3000, Seed: 5})
	sub1, err := w.Pattern(acep.SequencePatterns, 3, 80*acep.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := w.Pattern(acep.ConjunctionPatterns, 3, 80*acep.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	or, err := acep.Or(sub1, sub2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := acep.NewEngine(or, acep.Config{
		Model: acep.ZStreamTree,
		NewPolicy: func() acep.Policy {
			return acep.NewInvariantPolicy(acep.InvariantOptions{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	if len(eng.CurrentPlans()) != 2 {
		t.Fatalf("plans = %d; want one per disjunct", len(eng.CurrentPlans()))
	}
	if eng.Metrics().Matches == 0 {
		t.Fatal("no matches detected")
	}
}
