// Cluster: distributed key-partitioned detection. The sharded engine
// scales within one process; the cluster layer scales the same design
// across worker nodes behind an ingress coordinator. The ingress
// partitions the keyed stream across nodes with the same consistent
// placement the shard layer uses locally, drives uniform watermark cuts
// (nodes whose partitions are momentarily idle still advance), and
// merges the node match streams into one deterministic order — for
// key-partitionable patterns the delivered stream is byte-identical to
// the single-process sharded engine's.
//
// This demo spawns the worker nodes in-process (chan transport, zero
// setup). The identical code drives remote TCP workers: start them with
//
//	acep-node -listen 127.0.0.1:7101 -in keyed.csv -kind sequence -size 4 -shards 2
//
// and set ClusterConfig.Connect to their addresses.
package main

import (
	"fmt"
	"time"

	"acep"
)

func main() {
	w := acep.NewTrafficWorkload(acep.TrafficConfig{
		Types:  8,
		Events: 200000,
		Seed:   42,
		Shifts: 3,
		Keys:   32, // 32 distinct vehicles → a "key" attribute on every event
	})
	pat, err := w.Pattern(acep.SequencePatterns, 4, 2*acep.Second)
	if err != nil {
		panic(err)
	}
	fmt.Println("pattern:", pat)

	// Reference: the single-process sharded engine at 6 shards.
	var refMatches uint64
	ref, err := acep.NewShardedEngine(pat, acep.Config{}, acep.ShardedConfig{
		Shards: 6, KeyAttr: "key", Schema: w.Schema,
		OnMatch: func(*acep.Match) { refMatches++ },
	})
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for i := range w.Events {
		ref.Process(&w.Events[i])
	}
	ref.Finish()
	fmt.Printf("sharded reference: 6 shards, %d matches, %9.0f ev/s\n\n",
		refMatches, float64(len(w.Events))/time.Since(start).Seconds())

	// The same layout distributed: 1, 2 and 3 nodes covering 6 global
	// shards between them. Every layout must detect the identical match
	// set, in the identical order.
	for _, nodes := range []int{1, 2, 3} {
		var matches uint64
		ing, err := acep.NewClusterIngress(pat, acep.Config{}, acep.ClusterConfig{
			Nodes:         nodes,
			ShardsPerNode: 6 / nodes,
			KeyAttr:       "key",
			Schema:        w.Schema,
			OnMatch:       func(*acep.Match) { matches++ },
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := range w.Events {
			ing.Process(&w.Events[i])
		}
		if err := ing.Finish(); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		m := ing.Metrics()
		fmt.Printf("cluster: %d node(s) × %d shards  %9.0f ev/s  matches=%d  queue-wait p99=%v\n",
			nodes, 6/nodes, float64(len(w.Events))/elapsed.Seconds(), matches,
			time.Duration(m.QueueWait.Quantile(0.99)).Round(time.Microsecond))
		if matches != refMatches {
			panic("distribution changed the match set")
		}
	}
	fmt.Println("\nEvery layout detects the identical match set; each node's engines adapt")
	fmt.Println("independently, exactly as the paper's per-partition argument (§7) allows.")
}
