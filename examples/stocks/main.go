// Stocks: tree-based (ZStream) adaptive detection on the near-uniform,
// slowly drifting workload that stands in for the paper's NASDAQ
// dataset. The pattern is the paper's conjunction example: three stock
// identifiers whose price deltas are strictly increasing,
// AND(A,B,C) WHERE A.diff < B.diff < C.diff. The demo contrasts the
// constant-threshold baseline with the invariant method, highlighting the
// regime in which the two are closest (§5.2).
package main

import (
	"fmt"
	"time"

	"acep"
)

func main() {
	w := acep.NewStocksWorkload(acep.StocksConfig{
		Types:  8,
		Events: 150000,
		Seed:   7,
	})
	pat, err := w.Pattern(acep.ConjunctionPatterns, 3, 100*acep.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Println("pattern:", pat)

	policies := []struct {
		name string
		mk   func() acep.Policy
	}{
		{"threshold t=0.3", func() acep.Policy { return acep.NewThresholdPolicy(0.3) }},
		{"invariant d=0.3", func() acep.Policy {
			return acep.NewInvariantPolicy(acep.InvariantOptions{Distance: 0.3})
		}},
		{"invariant K=3, auto-d", func() acep.Policy {
			return acep.NewInvariantPolicy(acep.InvariantOptions{K: 3, AutoDistance: true})
		}},
	}
	for _, p := range policies {
		var matches uint64
		eng, err := acep.NewEngine(pat, acep.Config{
			Model:   acep.ZStreamTree, // tree-based plans, DP planner
			Policy:  p.mk(),
			OnMatch: func(*acep.Match) { matches++ },
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		elapsed := time.Since(start)
		m := eng.Metrics()
		fmt.Printf("%-24s %9.0f ev/s  matches=%d  replans=%d  plan=%v\n",
			p.name,
			float64(len(w.Events))/elapsed.Seconds(),
			matches, m.Reoptimizations, eng.CurrentPlans()[0])
	}
}
