// Traffic: adaptive detection on the skewed, regime-shifting workload
// that stands in for the paper's vehicle-traffic dataset. The pattern
// looks for anomalous triples of observations where both the average
// speed and the vehicle count increase (a violation of normal driving
// behaviour). The demo compares the invariant-based policy against the
// static and unconditional baselines on the identical stream and prints
// throughput, reoptimization counts and adaptation overhead.
package main

import (
	"fmt"
	"time"

	"acep"
)

func main() {
	w := acep.NewTrafficWorkload(acep.TrafficConfig{
		Types:  8,
		Events: 150000,
		Seed:   42,
		Shifts: 3,
	})
	pat, err := w.Pattern(acep.SequencePatterns, 4, 150*acep.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Println("pattern:", pat)
	fmt.Printf("stream: %d events across %d observation points, 3 extreme regime shifts\n\n",
		len(w.Events), 8)

	policies := []struct {
		name string
		mk   func() acep.Policy
	}{
		{"static (never adapt)", func() acep.Policy { return acep.NewStaticPolicy() }},
		{"unconditional (replan every check)", func() acep.Policy { return acep.NewUnconditionalPolicy() }},
		{"invariant d=0.2 (the paper's method)", func() acep.Policy {
			return acep.NewInvariantPolicy(acep.InvariantOptions{Distance: 0.2})
		}},
	}
	for _, p := range policies {
		var matches uint64
		eng, err := acep.NewEngine(pat, acep.Config{
			Policy:  p.mk(),
			OnMatch: func(*acep.Match) { matches++ },
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		elapsed := time.Since(start)
		m := eng.Metrics()
		fmt.Printf("%-38s %9.0f ev/s  matches=%d  replans=%d  overhead=%.2f%%\n",
			p.name,
			float64(len(w.Events))/elapsed.Seconds(),
			matches, m.Reoptimizations, 100*m.Overhead(elapsed))
	}
	fmt.Println("\nEvery policy detects the identical match set; they differ only in how")
	fmt.Println("they keep the evaluation plan aligned with the shifting statistics.")
}
