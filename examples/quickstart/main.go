// Quickstart: the paper's Example 1. A building's security cameras emit
// face-recognition events; we detect a person entering through the main
// gate (camera A), crossing the lobby (camera B) and reaching the
// restricted area (camera C) within ten minutes.
package main

import (
	"fmt"

	"acep"
)

func main() {
	schema := acep.NewSchema()
	camA := schema.MustAddType("A", "person_id")
	camB := schema.MustAddType("B", "person_id")
	camC := schema.MustAddType("C", "person_id")

	// PATTERN SEQ(A a, B b, C c)
	// WHERE a.person_id = b.person_id AND b.person_id = c.person_id
	// WITHIN 10 minutes
	pb := acep.NewPattern(schema, acep.Seq, 10*acep.Minute)
	a := pb.Event(camA)
	b := pb.Event(camB)
	c := pb.Event(camC)
	pb.WhereEq(a, "person_id", b, "person_id")
	pb.WhereEq(b, "person_id", c, "person_id")
	pattern := pb.MustBuild()
	fmt.Println("pattern:", pattern)

	eng, err := acep.NewEngine(pattern, acep.Config{
		Policy: acep.NewInvariantPolicy(acep.InvariantOptions{}),
		OnMatch: func(m *acep.Match) {
			fmt.Printf("ALERT: person %.0f took the route A->B->C (%s)\n",
				m.Events[a].Attr(0), m)
		},
	})
	if err != nil {
		panic(err)
	}

	// A small handcrafted stream: person 7 walks the full route; person 9
	// is seen at A and C but never at B, so no alert fires for them.
	events := []acep.Event{
		{Type: camA, TS: 1 * acep.Minute, Seq: 1, Attrs: []float64{7}},
		{Type: camA, TS: 2 * acep.Minute, Seq: 2, Attrs: []float64{9}},
		{Type: camB, TS: 3 * acep.Minute, Seq: 3, Attrs: []float64{7}},
		{Type: camC, TS: 5 * acep.Minute, Seq: 4, Attrs: []float64{9}},
		{Type: camC, TS: 6 * acep.Minute, Seq: 5, Attrs: []float64{7}},
	}
	for i := range events {
		eng.Process(&events[i])
	}
	eng.Finish()

	m := eng.Metrics()
	fmt.Printf("processed %d events, detected %d match(es)\n", m.Events, m.Matches)
}
