// Sharded: key-partitioned parallel detection. The stream carries a
// partition key (think vehicle id); the pattern joins its events on that
// key, so it is key-partitionable and the sharded engine can split the
// stream across one fully independent adaptive engine per shard — each
// with its own plan, statistics and invariants — while still producing
// exactly the single-threaded match set, delivered in deterministic
// detection order. The demo runs 1, 2, 4 and GOMAXPROCS shards on the
// identical keyed traffic stream and prints throughput, speedup and the
// per-shard replan counts (shards adapt independently, so they may
// replan at different times and settle on different plans).
package main

import (
	"fmt"
	"runtime"
	"time"

	"acep"
)

func main() {
	w := acep.NewTrafficWorkload(acep.TrafficConfig{
		Types:  8,
		Events: 200000,
		Seed:   42,
		Shifts: 3,
		Keys:   32, // 32 distinct vehicles → a "key" attribute on every event
	})
	pat, err := w.Pattern(acep.SequencePatterns, 4, 2*acep.Second)
	if err != nil {
		panic(err)
	}
	fmt.Println("pattern:", pat)
	if err := acep.ShardPartitionable(pat, w.Schema, "key"); err != nil {
		panic(err) // keyed workload patterns join on "key", so this holds
	}
	fmt.Printf("stream: %d events, %d vehicles, %d cores\n\n",
		len(w.Events), 32, runtime.GOMAXPROCS(0))

	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	var base float64
	var baseMatches uint64
	for _, shards := range counts {
		var matches uint64
		eng, err := acep.NewShardedEngine(pat, acep.Config{}, acep.ShardedConfig{
			Shards:  shards,
			Batch:   512,
			KeyAttr: "key",
			Schema:  w.Schema,
			OnMatch: func(*acep.Match) { matches++ },
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		elapsed := time.Since(start)
		tp := float64(len(w.Events)) / elapsed.Seconds()
		if base == 0 {
			base, baseMatches = tp, matches
		}
		var replans []uint64
		for _, sm := range eng.ShardMetrics() {
			replans = append(replans, sm.Reoptimizations)
		}
		fmt.Printf("shards=%-2d  %9.0f ev/s  speedup=%.2fx  matches=%d  replans/shard=%v\n",
			shards, tp, tp/base, matches, replans)
		if matches != baseMatches {
			panic("sharding changed the match set")
		}
	}
	fmt.Println("\nEvery shard count detects the identical match set; with more cores,")
	fmt.Println("throughput scales until a shard's key group dominates the stream.")
}
