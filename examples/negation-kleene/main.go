// Negation and Kleene closure: the advanced pattern operators. The
// scenario extends the paper's camera example: raise an alert when a
// person is seen at the main gate (A) and later in the restricted area
// (C) with one or more lobby sightings in between (B*), but only if no
// security-guard checkpoint event (G) for that person occurred between
// the gate and the restricted area.
package main

import (
	"fmt"

	"acep"
)

func main() {
	schema := acep.NewSchema()
	camA := schema.MustAddType("A", "person_id")
	camB := schema.MustAddType("B", "person_id")
	camC := schema.MustAddType("C", "person_id")
	guard := schema.MustAddType("G", "person_id")

	pb := acep.NewPattern(schema, acep.Seq, 10*acep.Minute)
	a := pb.Event(camA)
	b := pb.Event(camB)
	g := pb.Event(guard)
	c := pb.Event(camC)
	pb.Kleene(b) // one or more lobby sightings
	pb.Negate(g) // no guard checkpoint in between
	pb.WhereEq(b, "person_id", a, "person_id")
	pb.WhereEq(g, "person_id", a, "person_id")
	pb.WhereEq(c, "person_id", a, "person_id")
	pat := pb.MustBuild()
	fmt.Println("pattern:", pat)

	eng, err := acep.NewEngine(pat, acep.Config{
		Policy: acep.NewInvariantPolicy(acep.InvariantOptions{}),
		OnMatch: func(m *acep.Match) {
			fmt.Printf("ALERT person %.0f: gate@%d, %d lobby sighting(s), restricted@%d\n",
				m.Events[a].Attr(0), m.Events[a].TS, len(m.Kleene[b]), m.Events[c].TS)
		},
	})
	if err != nil {
		panic(err)
	}

	mins := func(n int) acep.Time { return acep.Time(n) * acep.Minute }
	events := []acep.Event{
		// Person 1: full route, two lobby sightings, no guard -> alert
		// with a Kleene set of size 2.
		{Type: camA, TS: mins(1), Seq: 1, Attrs: []float64{1}},
		{Type: camB, TS: mins(2), Seq: 2, Attrs: []float64{1}},
		{Type: camB, TS: mins(3), Seq: 3, Attrs: []float64{1}},
		{Type: camC, TS: mins(4), Seq: 4, Attrs: []float64{1}},
		// Person 2: same route but a guard checked them in between -> no
		// alert.
		{Type: camA, TS: mins(5), Seq: 5, Attrs: []float64{2}},
		{Type: camB, TS: mins(6), Seq: 6, Attrs: []float64{2}},
		{Type: guard, TS: mins(7), Seq: 7, Attrs: []float64{2}},
		{Type: camC, TS: mins(8), Seq: 8, Attrs: []float64{2}},
		// Person 3: never seen in the lobby -> no alert (Kleene needs at
		// least one sighting).
		{Type: camA, TS: mins(9), Seq: 9, Attrs: []float64{3}},
		{Type: camC, TS: mins(11), Seq: 10, Attrs: []float64{3}},
		// Late watermark driver so open negation scopes close.
		{Type: camA, TS: mins(30), Seq: 11, Attrs: []float64{99}},
	}
	for i := range events {
		eng.Process(&events[i])
	}
	eng.Finish()
	fmt.Printf("detected %d match(es) from %d events\n",
		eng.Metrics().Matches, len(events))
}
