// Shedding: overload control for a stream the best plan cannot absorb.
// The demo detects a keyed 3-step sequence over a traffic-like stream
// whose arrival rate is 8x the engine's configured budget, so the load
// monitor reports overload throughout and every policy sheds at its
// target drop fraction. It then compares what each policy keeps:
//
//   - none: the unshedded baseline (recall 1 by definition);
//   - random: the classic uniform shedder — every event drops with
//     probability p, so a k-event match survives with ~(1-p)^k;
//   - rate-utility: sheds the least useful arrival mass first, computed
//     from the engine's own statistics (event types the pattern never
//     references cost zero recall to drop);
//   - pattern-aware: queries the engine's live partial matches and never
//     drops an event that could extend one, compensating on the cold
//     events so the stream-wide drop rate still meets the target.
//
// Every decision is a deterministic function of the stream and the
// configuration — rerun the demo and the numbers repeat exactly.
package main

import (
	"fmt"

	"acep"
)

func main() {
	w := acep.NewTrafficWorkload(acep.TrafficConfig{
		Types:  10,
		Events: 100000,
		Seed:   7,
		Shifts: 3,
		Keys:   16, // 16 vehicles; the pattern joins on "key"
	})
	pat, err := w.Pattern(acep.SequencePatterns, 3, 5*acep.Second)
	if err != nil {
		panic(err)
	}
	fmt.Println("pattern:", pat)

	// The stream arrives at ~330 events per logical second; budgeting a
	// fraction of that forces permanent overload, the regime shedding
	// policies are made for.
	budget := acep.ShedBudget{EventsPerSec: 40}
	const target = 0.4

	policies := []struct {
		name string
		pol  acep.ShedPolicy
	}{
		{"none", nil},
		{"random", acep.NewShedRandom(target)},
		{"rate-utility", acep.NewShedRateUtility(target)},
		{"pattern-aware", acep.NewShedPatternAware(target)},
	}

	key, err := acep.ShardKeyByAttr(w.Schema, "key")
	if err != nil {
		panic(err)
	}

	var baseline uint64
	fmt.Printf("\n%-16s%10s%10s%10s\n", "policy", "dropped", "matches", "recall")
	for _, p := range policies {
		cfg := acep.Config{
			// The tree model's node stores make partial-match liveness
			// visible to the pattern-aware policy.
			Model:      acep.ZStreamTree,
			CheckEvery: 500,
		}
		if p.pol != nil {
			cfg.Shedding = acep.SheddingConfig{
				Policy: p.pol,
				Budget: budget,
				Key:    key,
			}
		}
		var matches uint64
		cfg.OnMatch = func(*acep.Match) { matches++ }
		eng, err := acep.NewEngine(pat, cfg)
		if err != nil {
			panic(err)
		}
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		m := eng.Metrics()
		if p.pol == nil {
			baseline = matches
		}
		fmt.Printf("%-16s%10.3f%10d%10.3f\n",
			p.name, m.ShedRate(), matches, float64(matches)/float64(baseline))
	}
	fmt.Println("\nAt the same 40% drop rate, pattern-aware shedding keeps the")
	fmt.Println("matches uniform shedding destroys: it drops only events no live")
	fmt.Println("partial match is waiting for.")
}
