package acep_test

import (
	"testing"

	"acep"
)

// TestSheddingFacade exercises the overload-control surface through the
// root package: an engine over budget sheds with each policy, the None
// policy and the no-shedding engine agree exactly, and pattern-aware
// shedding keeps more matches than uniform shedding at the same target.
func TestSheddingFacade(t *testing.T) {
	w := acep.NewTrafficWorkload(acep.TrafficConfig{
		Types: 8, Events: 30000, Seed: 3, Shifts: 2, Keys: 16,
	})
	pat, err := w.Pattern(acep.SequencePatterns, 3, 3*acep.Second)
	if err != nil {
		t.Fatal(err)
	}
	key, err := acep.ShardKeyByAttr(w.Schema, "key")
	if err != nil {
		t.Fatal(err)
	}

	run := func(pol acep.ShedPolicy) (uint64, acep.Metrics) {
		cfg := acep.Config{Model: acep.ZStreamTree, CheckEvery: 500}
		if pol != nil {
			cfg.Shedding = acep.SheddingConfig{
				Policy: pol,
				Budget: acep.ShedBudget{EventsPerSec: 40}, // stream runs ~8x this
				Key:    key,
			}
		}
		var matches uint64
		cfg.OnMatch = func(*acep.Match) { matches++ }
		eng, err := acep.NewEngine(pat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		return matches, eng.Metrics()
	}

	baseline, _ := run(nil)
	if baseline == 0 {
		t.Fatal("baseline produced no matches; test is vacuous")
	}
	noneMatches, noneM := run(acep.NewShedNone())
	if noneMatches != baseline || noneM.EventsShed != 0 {
		t.Fatalf("None policy changed detection: %d matches (baseline %d), %d shed",
			noneMatches, baseline, noneM.EventsShed)
	}

	randMatches, randM := run(acep.NewShedRandom(0.4))
	paMatches, paM := run(acep.NewShedPatternAware(0.4))
	if randM.EventsShed == 0 || paM.EventsShed == 0 {
		t.Fatalf("no shedding under forced overload: random %d, pattern-aware %d",
			randM.EventsShed, paM.EventsShed)
	}
	if paMatches <= randMatches {
		t.Fatalf("pattern-aware kept %d matches, random kept %d — expected strictly more",
			paMatches, randMatches)
	}
	if paMatches > baseline {
		t.Fatalf("shedding grew the match set: %d > %d", paMatches, baseline)
	}

	// The rate-utility policy must shed the event types the pattern never
	// references before touching useful mass at a modest target.
	ruMatches, ruM := run(acep.NewShedRateUtility(0.2))
	if ruM.EventsShed == 0 {
		t.Fatal("rate-utility shed nothing")
	}
	if ruMatches < randMatches {
		t.Fatalf("rate-utility(0.2) kept %d matches, below random(0.4)'s %d",
			ruMatches, randMatches)
	}
}

// TestShardedOverloadFacade drives the bounded-queue knobs through the
// public sharded API: DropNewest with per-event shedding in each shard.
func TestShardedOverloadFacade(t *testing.T) {
	w := acep.NewTrafficWorkload(acep.TrafficConfig{
		Types: 8, Events: 20000, Seed: 4, Keys: 16,
	})
	pat, err := w.Pattern(acep.SequencePatterns, 3, 2*acep.Second)
	if err != nil {
		t.Fatal(err)
	}
	var matches uint64
	eng, err := acep.NewShardedEngine(pat, acep.Config{
		CheckEvery: 500,
		Shedding: acep.SheddingConfig{
			Policy: acep.NewShedPatternAware(0.5),
			Budget: acep.ShedBudget{EventsPerSec: 40},
		},
	}, acep.ShardedConfig{
		Shards:   4,
		Batch:    128,
		QueueCap: 1024,
		Overflow: acep.ShardDropNewest,
		KeyAttr:  "key",
		Schema:   w.Schema,
		OnMatch:  func(*acep.Match) { matches++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	m := eng.Metrics()
	if m.EventsShed == 0 {
		t.Fatal("sharded engine shed nothing under forced overload")
	}
	if m.Events+m.EventsShed+m.QueueDropped != uint64(len(w.Events)) {
		t.Fatalf("event accounting: %d + %d + %d != %d",
			m.Events, m.EventsShed, m.QueueDropped, len(w.Events))
	}
}
