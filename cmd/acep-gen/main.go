// Command acep-gen generates a synthetic workload (the traffic-like or
// stocks-like dataset described in DESIGN.md) and writes it as CSV to
// stdout or a file, for archiving or replay with acep-run.
//
//	acep-gen -dataset traffic -events 100000 -seed 7 -o traffic.csv
//	acep-gen -dataset stocks  -types 20 | head
//
// With -patterns it instead emits a reproducible overlapping-prefix
// pattern-set spec (consumed by acep-run -patternset and acep-bench):
//
//	acep-gen -dataset traffic -patterns 32 -overlap 3 -window 150 -o set.acep
package main

import (
	"flag"
	"fmt"
	"os"

	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "traffic", "workload family: traffic or stocks")
		events  = flag.Int("events", 100000, "number of events")
		types   = flag.Int("types", 10, "number of event types")
		seed    = flag.Int64("seed", 1, "generator seed")
		shifts  = flag.Int("shifts", 3, "extreme regime shifts (traffic only)")
		keys    = flag.Int("keys", 0, "distinct partition-key values in a \"key\" attribute (0 = no key; keyed workloads build shardable patterns for acep-run -shards)")
		out     = flag.String("o", "", "output file (default stdout)")

		patterns = flag.Int("patterns", 0, "emit an overlapping-prefix pattern-set spec for N patterns instead of a stream")
		overlap  = flag.Int("overlap", 3, "shared-prefix length in positions (with -patterns)")
		window   = flag.Int64("window", 150, "pattern time window (with -patterns)")
		kind     = flag.String("kind", "sequence", "suffix flavor: sequence, negation or kleene (with -patterns)")
		tenants  = flag.Int("tenants", 1, "assign patterns round-robin over this many tenants (with -patterns)")
	)
	flag.Parse()

	if *patterns > 0 {
		writePatternSet(*dataset, *types, *keys, *patterns, *overlap, *window, *kind, *tenants, *out)
		return
	}

	var w *gen.Workload
	switch *dataset {
	case "traffic":
		w = gen.Traffic(gen.TrafficConfig{
			Types: *types, Events: *events, Seed: *seed, Shifts: *shifts, Keys: *keys,
		})
	case "stocks":
		w = gen.Stocks(gen.StocksConfig{
			Types: *types, Events: *events, Seed: *seed, Keys: *keys,
		})
	default:
		fmt.Fprintf(os.Stderr, "acep-gen: unknown dataset %q (want traffic or stocks)\n", *dataset)
		os.Exit(2)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := stream.WriteCSV(dst, w); err != nil {
		fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "acep-gen: wrote %d events (%s, %d types, seed %d)\n",
		len(w.Events), *dataset, *types, *seed)
}

// writePatternSet validates the parameters by actually generating the
// set once, then writes the spec file that regenerates it.
func writePatternSet(dataset string, types, keys, patterns, overlap int, window int64, kindName string, tenants int, out string) {
	kind, err := gen.KindFromString(kindName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
		os.Exit(2)
	}
	spec := gen.PatternSetSpec{
		Dataset: dataset, Types: types, Keys: keys, Kind: kind,
		Patterns: patterns, Overlap: overlap, Window: event.Time(window), Tenants: tenants,
	}
	w, err := spec.Workload(1, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
		os.Exit(2)
	}
	if _, err := spec.Build(w); err != nil {
		fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
		os.Exit(2)
	}
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := gen.WritePatternSet(dst, spec); err != nil {
		fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "acep-gen: wrote pattern set spec (%s, %d patterns, overlap %d, %d tenants)\n",
		dataset, patterns, overlap, tenants)
}
