// Command acep-gen generates a synthetic workload (the traffic-like or
// stocks-like dataset described in DESIGN.md) and writes it as CSV to
// stdout or a file, for archiving or replay with acep-run.
//
//	acep-gen -dataset traffic -events 100000 -seed 7 -o traffic.csv
//	acep-gen -dataset stocks  -types 20 | head
package main

import (
	"flag"
	"fmt"
	"os"

	"acep/internal/gen"
	"acep/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "traffic", "workload family: traffic or stocks")
		events  = flag.Int("events", 100000, "number of events")
		types   = flag.Int("types", 10, "number of event types")
		seed    = flag.Int64("seed", 1, "generator seed")
		shifts  = flag.Int("shifts", 3, "extreme regime shifts (traffic only)")
		keys    = flag.Int("keys", 0, "distinct partition-key values in a \"key\" attribute (0 = no key; keyed workloads build shardable patterns for acep-run -shards)")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var w *gen.Workload
	switch *dataset {
	case "traffic":
		w = gen.Traffic(gen.TrafficConfig{
			Types: *types, Events: *events, Seed: *seed, Shifts: *shifts, Keys: *keys,
		})
	case "stocks":
		w = gen.Stocks(gen.StocksConfig{
			Types: *types, Events: *events, Seed: *seed, Keys: *keys,
		})
	default:
		fmt.Fprintf(os.Stderr, "acep-gen: unknown dataset %q (want traffic or stocks)\n", *dataset)
		os.Exit(2)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := stream.WriteCSV(dst, w); err != nil {
		fmt.Fprintf(os.Stderr, "acep-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "acep-gen: wrote %d events (%s, %d types, seed %d)\n",
		len(w.Events), *dataset, *types, *seed)
}
