// Command acep-standby runs an out-of-process coordinator standby: the
// mirror side of the HA replication link (internal/ha.StandbyServer)
// behind a TCP listener. A replicated coordinator (acep-run -ha with
// -standby-addr pointing here) streams every sealed cut, owner table
// and emission boundary into this process; on primary death a takeover
// successor pulls the mirrored state back out over the same listener
// with the Handover exchange and resumes the stream byte-identically.
//
// The standby needs no pattern, schema or workload knowledge: the
// primary's opening Epoch frame carries the journal sizing (window,
// slack, byte bound), and everything else arrives as self-describing
// wire frames. One binary serves any workload.
//
//	acep-standby -listen 127.0.0.1:7200 &
//	acep-run -in keyed.csv -connect ... -ha -standby-addr 127.0.0.1:7200
//
// The server keeps serving until killed: first the replication
// session, then any number of handover reads, then the next run's
// replication session — so one long-lived standby process covers
// successive runs and stays readable for late takeovers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"acep/internal/cluster"
	"acep/internal/ha"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:0", "TCP address to serve the replication link on")
		quiet  = flag.Bool("quiet", false, "suppress session lifecycle logging")
	)
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	log.SetPrefix("acep-standby ")

	l, err := cluster.ListenTCP(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acep-standby: %v\n", err)
		os.Exit(1)
	}
	srv := ha.NewStandbyServer(l)
	if !*quiet {
		srv.Logf = log.Printf
	}
	log.Printf("mirroring on %s", l.Addr())
	srv.Serve()
	cuts, events := srv.Stats()
	log.Printf("exit: %d cuts, %d events mirrored", cuts, events)
}
