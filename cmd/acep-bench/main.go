// Command acep-bench regenerates the paper's evaluation tables and
// figures on the synthetic stand-in workloads.
//
// Usage:
//
//	acep-bench -exp fig6                 # one experiment
//	acep-bench -exp all                  # everything (slow)
//	acep-bench -exp fig5 -events 200000  # scale up
//	acep-bench -list                     # show experiment ids
//
// Experiment ids follow the paper: fig5, table1, fig6..fig9 (main
// method comparison per dataset-algorithm combo), fig10..fig29 (appendix:
// per pattern set). See DESIGN.md for the full index.
//
// Beyond the paper, scale-traffic and scale-stocks measure the sharded
// execution layer's throughput against shard count on keyed workloads:
//
//	acep-bench -exp scale-traffic -shards 8 -batch 512
//	acep-bench -exp scale-traffic -json BENCH_scaling.json
//
// shed-traffic and shed-stocks measure the overload-control layer's
// throughput-vs-recall frontier (every shedding policy against the
// unshedded baseline, under deterministic forced overload):
//
//	acep-bench -exp shed-traffic
//	acep-bench -exp shed-traffic -shed random,pattern-aware -json BENCH_shedding.json
//	acep-bench -exp shed-traffic -queue-cap 1024   # + bounded drop-newest queues
//
// cluster-traffic and cluster-stocks measure the distributed layer's
// throughput against node count (loopback-TCP worker nodes, each point
// cross-checked against the single-process sharded engine at the same
// total shard count):
//
//	acep-bench -exp cluster-traffic -nodes 3 -shards 2
//	acep-bench -exp cluster-traffic -json BENCH_cluster.json
//	acep-bench -exp cluster-traffic -nodes 2 -batch-sweep 64,256,1024
//
// failover-traffic and failover-stocks measure the fault-tolerance
// layer: one node of a loopback-TCP cluster is killed mid-stream and its
// shard block fails over to a bare standby, sweeping node count (3-5)
// and journal retention; every run's match stream is verified against
// the single-process sharded engine before reporting recovery time and
// throughput dip:
//
//	acep-bench -exp failover-traffic -json BENCH_failover.json
//
// elastic-traffic and elastic-stocks measure the elasticity layer: the
// identical skewed keyed workload runs through a balanced 3-node
// cluster, a 2-node cluster that admits a bare third node mid-stream
// with rebalancing off (the joiner idles), and the same join with the
// placement controller on (it must migrate load onto the joiner);
// every run's match stream is verified against the single-process
// sharded engine before reporting migration pauses and the post-join
// throughput recovery:
//
//	acep-bench -exp elastic-traffic -json BENCH_elastic.json
//
// multi-traffic and multi-stocks measure the multi-pattern sharing
// layer: generated overlap sets (shared SEQ prefixes, divergent
// suffixes) run through one shared evaluator and, for the baseline,
// through one independent engine per pattern over the same stream;
// per-pattern match streams are digest-verified identical between the
// modes before reporting throughput and speedup across the pattern-count
// sweep (-patterns, default 8,32,128):
//
//	acep-bench -exp multi-traffic -json BENCH_multi.json
//	acep-bench -exp multi-stocks -patterns 8,64
//
// ha-traffic and ha-stocks measure the ingress-HA layer: the identical
// keyed workload runs through a plain journaled coordinator, a
// replicated coordinator pair left healthy (replication overhead), and
// a replicated pair whose primary is killed ~40% into the stream
// (takeover pause, replay and re-feed volumes); every run's match
// stream is digest-verified against the single-process sharded engine:
//
//	acep-bench -exp ha-traffic -json BENCH_ha.json
//	acep-bench -exp ha-stocks -nodes 3 -shards 2
//
// chaos-traffic and chaos-stocks measure partition tolerance: the same
// replicated pair runs with a deterministically faulty replication link
// (duplicated and delayed frames, absorbed by the cut-ordinal protocol)
// and then with the link silently blackholed mid-stream under a lease
// arbiter — the primary demotes, the successor wins the lease and takes
// over, and the delivered stream is digest-verified byte-identical:
//
//	acep-bench -exp chaos-traffic -json BENCH_chaos.json
//
// hotpath-traffic and hotpath-stocks measure the single-engine hot path:
// per-event cost (events/sec, B/event, allocs/event) of a raw
// static-plan engine for the sequence, negation and Kleene families on
// both engine models, oracle-verified before timing:
//
//	acep-bench -exp hotpath-traffic -phase after -json BENCH_hotpath.json
//
// -cpuprofile and -memprofile write pprof profiles covering the
// experiment runs, so perf changes can carry evidence:
//
//	acep-bench -exp hotpath-traffic -cpuprofile cpu.pb.gz
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"acep/internal/bench"
	"acep/internal/event"
	"acep/internal/gen"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (fig5, table1, fig6..fig29, or 'all')")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		events = flag.Int("events", 0, "events per measured run (default 30000)")
		seed   = flag.Int64("seed", 1, "workload seed")
		window = flag.Int64("window", 0, "pattern window in logical ms (default 100)")
		check  = flag.Int("check", 0, "adaptation check interval in events (default 500)")
		sizes  = flag.String("sizes", "", "comma-separated pattern sizes (default 3..8)")
		shards = flag.Int("shards", 0, "max shard count for scale-* experiments (sweeps powers of two; default 8); shards per node for cluster-*")
		nodes  = flag.Int("nodes", 0, "max node count for cluster-* experiments (default sweep 1,2,3)")
		batch  = flag.Int("batch", 0, "events per shard handoff batch for scale-* experiments (0 = default)")
		bsweep = flag.String("batch-sweep", "", "comma-separated batch sizes for cluster-* experiments (sweeps batch at fixed -nodes instead of node count)")
		shedPo = flag.String("shed", "", "comma-separated shedding policies for shed-* experiments (default all: random,rate-utility,pattern-aware)")
		qcap   = flag.Int("queue-cap", 0, "bounded per-shard drop-newest ingestion queue (events) for shed-* experiments (0 = unsharded, deterministic)")
		pcount = flag.String("patterns", "", "comma-separated pattern counts for multi-* experiments (default 8,32,128)")
		pset   = flag.String("patternset", "", "pattern-set spec file (acep-gen -patterns) pinning the multi-* experiment's set shape (default: generated sequence sets)")
		jsonMD = flag.String("json", "", "append scale-*/shed-* results to this BENCH_*.json trajectory file")
		phase  = flag.String("phase", "after", "phase label recorded by hotpath-* experiments (e.g. before/after an optimization)")
		cpupro = flag.String("cpuprofile", "", "write a CPU profile covering the experiment runs to this file")
		mempro = flag.String("memprofile", "", "write a heap profile after the experiment runs to this file")
	)
	flag.Parse()

	if *list {
		ids := append(bench.ExperimentIDs(), bench.ScalingIDs()...)
		ids = append(ids, bench.SheddingIDs()...)
		ids = append(ids, bench.ClusterIDs()...)
		ids = append(ids, bench.FailoverIDs()...)
		ids = append(ids, bench.ElasticIDs()...)
		ids = append(ids, bench.MultiIDs()...)
		ids = append(ids, bench.HAIDs()...)
		ids = append(ids, bench.ChaosIDs()...)
		for _, id := range append(ids, bench.HotpathIDs()...) {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "acep-bench: -exp required (or -list); e.g. -exp fig6")
		os.Exit(2)
	}
	sc := bench.DefaultScale()
	sc.Seed = *seed
	if *events > 0 {
		sc.Events = *events
	}
	if *window > 0 {
		sc.Window = event.Time(*window)
	}
	if *check > 0 {
		sc.CheckEvery = *check
	}
	if *sizes != "" {
		sc.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "acep-bench: bad size %q\n", s)
				os.Exit(2)
			}
			sc.Sizes = append(sc.Sizes, v)
		}
	}
	h := bench.NewHarness(sc)
	r := bench.NewRunner(h)
	ids := []string{*exp}
	if *exp == "all" {
		ids = append(bench.ExperimentIDs(), bench.ScalingIDs()...)
		ids = append(ids, bench.SheddingIDs()...)
		ids = append(ids, bench.ClusterIDs()...)
		ids = append(ids, bench.FailoverIDs()...)
		ids = append(ids, bench.ElasticIDs()...)
		ids = append(ids, bench.MultiIDs()...)
		ids = append(ids, bench.HAIDs()...)
		ids = append(ids, bench.ChaosIDs()...)
		ids = append(ids, bench.HotpathIDs()...)
	}
	// Profile lifecycle and the experiment loop live in one function so
	// its defers — the CPU profile trailer, the heap snapshot — run even
	// when an experiment errors; os.Exit only happens after they fire
	// (a failing run is exactly when the profile is wanted).
	if err := runAll(ids, h, r, flags{
		shards: *shards, nodes: *nodes, batch: *batch, qcap: *qcap,
		shedPo: *shedPo, bsweep: *bsweep, phase: *phase, jsonMD: *jsonMD,
		pcount: *pcount, pset: *pset,
		cpupro: *cpupro, mempro: *mempro,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "acep-bench: %v\n", err)
		os.Exit(1)
	}
}

// flags carries the experiment-tuning CLI values into runAll.
type flags struct {
	shards, nodes, batch, qcap    int
	shedPo, bsweep, phase, jsonMD string
	cpupro, mempro, pcount, pset  string
}

func runAll(ids []string, h *bench.Harness, r *bench.Runner, fl flags) error {
	if fl.cpupro != "" {
		f, err := os.Create(fl.cpupro)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if fl.mempro != "" {
		defer func() {
			if err := writeHeapProfile(fl.mempro); err != nil {
				fmt.Fprintf(os.Stderr, "acep-bench: heap profile: %v\n", err)
			}
		}()
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		var err error
		switch {
		case contains(bench.ScalingIDs(), id):
			err = runScaling(h, id, fl.shards, fl.batch, fl.jsonMD)
		case contains(bench.SheddingIDs(), id):
			err = runShedding(h, id, fl.shedPo, fl.qcap, fl.jsonMD)
		case contains(bench.ClusterIDs(), id):
			err = runCluster(h, id, fl.nodes, fl.shards, fl.batch, fl.bsweep, fl.jsonMD)
		case contains(bench.FailoverIDs(), id):
			err = runFailover(h, id, fl.nodes, fl.shards, fl.batch, fl.jsonMD)
		case contains(bench.ElasticIDs(), id):
			err = runElastic(h, id, fl.shards, fl.batch, fl.jsonMD)
		case contains(bench.MultiIDs(), id):
			err = runMulti(h, id, fl.pcount, fl.pset, fl.jsonMD)
		case contains(bench.HAIDs(), id):
			err = runHA(h, id, fl.nodes, fl.shards, fl.batch, fl.jsonMD)
		case contains(bench.ChaosIDs(), id):
			err = runChaos(h, id, fl.nodes, fl.shards, fl.batch, fl.jsonMD)
		case contains(bench.HotpathIDs(), id):
			err = runHotpath(h, id, fl.phase, fl.jsonMD)
		default:
			err = r.Run(os.Stdout, id)
		}
		if err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// writeHeapProfile records the post-run heap (after a final GC, so live
// retention — not transient garbage — is what the profile shows).
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func contains(ids []string, id string) bool {
	for _, s := range ids {
		if id == s {
			return true
		}
	}
	return false
}

// runScaling executes one scale-* experiment with the CLI's shard sweep
// and batch size, printing the table and optionally appending the run to
// a BENCH_*.json trajectory.
func runScaling(h *bench.Harness, id string, maxShards, batch int, jsonPath string) error {
	if maxShards <= 0 {
		maxShards = 8
	}
	dataset := strings.TrimPrefix(id, "scale-")
	d, err := h.Scaling(dataset, bench.ShardCountsUpTo(maxShards), batch)
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// runShedding executes one shed-* experiment with the CLI's policy
// filter and queue bound, printing the frontier table and optionally
// appending the run to a BENCH_*.json trajectory.
func runShedding(h *bench.Harness, id, policyCSV string, queueCap int, jsonPath string) error {
	var policies []string
	if policyCSV != "" {
		for _, p := range strings.Split(policyCSV, ",") {
			policies = append(policies, strings.TrimSpace(p))
		}
	}
	dataset := strings.TrimPrefix(id, "shed-")
	d, err := h.Shedding(dataset, bench.DefaultShedTargets(), policies, queueCap)
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// runCluster executes one cluster-* experiment with the CLI's node
// sweep, shards-per-node and batch size — or, with -batch-sweep, the
// batch-size sweep at a fixed node count — printing the table and
// optionally appending the run to a BENCH_*.json trajectory.
func runCluster(h *bench.Harness, id string, maxNodes, shardsPerNode, batch int, batchSweep, jsonPath string) error {
	dataset := strings.TrimPrefix(id, "cluster-")
	var d *bench.ClusterData
	var err error
	if batchSweep != "" {
		var batches []int
		for _, s := range strings.Split(batchSweep, ",") {
			v, perr := strconv.Atoi(strings.TrimSpace(s))
			if perr != nil || v < 1 {
				return fmt.Errorf("bad -batch-sweep entry %q", s)
			}
			batches = append(batches, v)
		}
		d, err = h.ClusterBatchSweep(dataset, batches, maxNodes, shardsPerNode)
	} else {
		counts := bench.DefaultNodeCounts()
		if maxNodes > 0 {
			counts = bench.NodeCountsUpTo(maxNodes)
		}
		d, err = h.Cluster(dataset, counts, shardsPerNode, batch)
	}
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// runFailover executes one failover-* experiment: the default sweep
// crosses node counts 3-5 with journal horizons, or -nodes pins one node
// count swept across horizons 1/2/4 windows.
func runFailover(h *bench.Harness, id string, nodes, shardsPerNode, batch int, jsonPath string) error {
	sweeps := bench.DefaultFailoverSweeps()
	if nodes > 0 {
		sweeps = nil
		for _, slack := range []int{1, 2, 4} {
			sweeps = append(sweeps, bench.FailoverSweep{Nodes: nodes, SlackWindows: slack})
		}
	}
	dataset := strings.TrimPrefix(id, "failover-")
	d, err := h.Failover(dataset, sweeps, shardsPerNode, batch)
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// runElastic executes one elastic-* experiment: balanced vs
// join-without-rebalance vs join-with-controller, with -shards setting
// the balanced configuration's per-node count.
func runElastic(h *bench.Harness, id string, shardsPerNode, batch int, jsonPath string) error {
	dataset := strings.TrimPrefix(id, "elastic-")
	d, err := h.Elastic(dataset, shardsPerNode, batch)
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// runMulti executes one multi-* experiment: shared evaluation of a
// generated overlap set against one-engine-per-pattern over the same
// stream, sweeping pattern counts.
func runMulti(h *bench.Harness, id, patternCounts, patternSet, jsonPath string) error {
	dataset := strings.TrimPrefix(id, "multi-")
	var counts []int
	if patternCounts != "" {
		for _, s := range strings.Split(patternCounts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				return fmt.Errorf("bad pattern count %q", s)
			}
			counts = append(counts, v)
		}
	}
	var d *bench.MultiData
	var err error
	if patternSet != "" {
		spec, lerr := gen.LoadPatternSet(patternSet)
		if lerr != nil {
			return lerr
		}
		if spec.Dataset != dataset {
			return fmt.Errorf("pattern set %s is for dataset %q, experiment %s wants %q",
				patternSet, spec.Dataset, id, dataset)
		}
		d, err = h.MultiSet(spec, counts)
	} else {
		d, err = h.Multi(dataset, counts)
	}
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// runHA executes one ha-* experiment: plain vs replicated vs killed
// coordinator over fresh loopback-TCP workers.
func runHA(h *bench.Harness, id string, nodes, shardsPerNode, batch int, jsonPath string) error {
	dataset := strings.TrimPrefix(id, "ha-")
	d, err := h.HA(dataset, nodes, shardsPerNode, batch)
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// runChaos executes one chaos-* experiment, printing the
// partition-tolerance table and optionally appending the run to a
// BENCH_*.json trajectory.
func runChaos(h *bench.Harness, id string, nodes, shardsPerNode, batch int, jsonPath string) error {
	dataset := strings.TrimPrefix(id, "chaos-")
	d, err := h.Chaos(dataset, nodes, shardsPerNode, batch)
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// runHotpath executes one hotpath-* experiment, printing the per-cell
// cost table and optionally appending the run (labelled with the CLI's
// phase) to a BENCH_*.json trajectory.
func runHotpath(h *bench.Harness, id, phase, jsonPath string) error {
	dataset := strings.TrimPrefix(id, "hotpath-")
	d, err := h.Hotpath(dataset, phase)
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	return appendJSON(jsonPath, d.WriteJSON)
}

// appendJSON appends one experiment record to a BENCH_*.json trajectory
// file (no-op for an empty path).
func appendJSON(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}
