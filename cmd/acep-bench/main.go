// Command acep-bench regenerates the paper's evaluation tables and
// figures on the synthetic stand-in workloads.
//
// Usage:
//
//	acep-bench -exp fig6                 # one experiment
//	acep-bench -exp all                  # everything (slow)
//	acep-bench -exp fig5 -events 200000  # scale up
//	acep-bench -list                     # show experiment ids
//
// Experiment ids follow the paper: fig5, table1, fig6..fig9 (main
// method comparison per dataset-algorithm combo), fig10..fig29 (appendix:
// per pattern set). See DESIGN.md for the full index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"acep/internal/bench"
	"acep/internal/event"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (fig5, table1, fig6..fig29, or 'all')")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		events = flag.Int("events", 0, "events per measured run (default 30000)")
		seed   = flag.Int64("seed", 1, "workload seed")
		window = flag.Int64("window", 0, "pattern window in logical ms (default 100)")
		check  = flag.Int("check", 0, "adaptation check interval in events (default 500)")
		sizes  = flag.String("sizes", "", "comma-separated pattern sizes (default 3..8)")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "acep-bench: -exp required (or -list); e.g. -exp fig6")
		os.Exit(2)
	}
	sc := bench.DefaultScale()
	sc.Seed = *seed
	if *events > 0 {
		sc.Events = *events
	}
	if *window > 0 {
		sc.Window = event.Time(*window)
	}
	if *check > 0 {
		sc.CheckEvery = *check
	}
	if *sizes != "" {
		sc.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "acep-bench: bad size %q\n", s)
				os.Exit(2)
			}
			sc.Sizes = append(sc.Sizes, v)
		}
	}
	r := bench.NewRunner(bench.NewHarness(sc))
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		if err := r.Run(os.Stdout, id); err != nil {
			fmt.Fprintf(os.Stderr, "acep-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
