// Command acep-bench regenerates the paper's evaluation tables and
// figures on the synthetic stand-in workloads.
//
// Usage:
//
//	acep-bench -exp fig6                 # one experiment
//	acep-bench -exp all                  # everything (slow)
//	acep-bench -exp fig5 -events 200000  # scale up
//	acep-bench -list                     # show experiment ids
//
// Experiment ids follow the paper: fig5, table1, fig6..fig9 (main
// method comparison per dataset-algorithm combo), fig10..fig29 (appendix:
// per pattern set). See DESIGN.md for the full index.
//
// Beyond the paper, scale-traffic and scale-stocks measure the sharded
// execution layer's throughput against shard count on keyed workloads:
//
//	acep-bench -exp scale-traffic -shards 8 -batch 512
//	acep-bench -exp scale-traffic -json BENCH_scaling.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"acep/internal/bench"
	"acep/internal/event"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (fig5, table1, fig6..fig29, or 'all')")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		events = flag.Int("events", 0, "events per measured run (default 30000)")
		seed   = flag.Int64("seed", 1, "workload seed")
		window = flag.Int64("window", 0, "pattern window in logical ms (default 100)")
		check  = flag.Int("check", 0, "adaptation check interval in events (default 500)")
		sizes  = flag.String("sizes", "", "comma-separated pattern sizes (default 3..8)")
		shards = flag.Int("shards", 0, "max shard count for scale-* experiments (sweeps powers of two; default 8)")
		batch  = flag.Int("batch", 0, "events per shard handoff batch for scale-* experiments (0 = default)")
		jsonMD = flag.String("json", "", "append scale-* results to this BENCH_*.json trajectory file")
	)
	flag.Parse()

	if *list {
		for _, id := range append(bench.ExperimentIDs(), bench.ScalingIDs()...) {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "acep-bench: -exp required (or -list); e.g. -exp fig6")
		os.Exit(2)
	}
	sc := bench.DefaultScale()
	sc.Seed = *seed
	if *events > 0 {
		sc.Events = *events
	}
	if *window > 0 {
		sc.Window = event.Time(*window)
	}
	if *check > 0 {
		sc.CheckEvery = *check
	}
	if *sizes != "" {
		sc.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "acep-bench: bad size %q\n", s)
				os.Exit(2)
			}
			sc.Sizes = append(sc.Sizes, v)
		}
	}
	h := bench.NewHarness(sc)
	r := bench.NewRunner(h)
	ids := []string{*exp}
	if *exp == "all" {
		ids = append(bench.ExperimentIDs(), bench.ScalingIDs()...)
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		if isScaling(id) {
			if err := runScaling(h, id, *shards, *batch, *jsonMD); err != nil {
				fmt.Fprintf(os.Stderr, "acep-bench: %v\n", err)
				os.Exit(1)
			}
		} else if err := r.Run(os.Stdout, id); err != nil {
			fmt.Fprintf(os.Stderr, "acep-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func isScaling(id string) bool {
	for _, sid := range bench.ScalingIDs() {
		if id == sid {
			return true
		}
	}
	return false
}

// runScaling executes one scale-* experiment with the CLI's shard sweep
// and batch size, printing the table and optionally appending the run to
// a BENCH_*.json trajectory.
func runScaling(h *bench.Harness, id string, maxShards, batch int, jsonPath string) error {
	if maxShards <= 0 {
		maxShards = 8
	}
	dataset := strings.TrimPrefix(id, "scale-")
	d, err := h.Scaling(dataset, bench.ShardCountsUpTo(maxShards), batch)
	if err != nil {
		return err
	}
	d.Write(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	f, err := os.OpenFile(jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.WriteJSON(f)
}
