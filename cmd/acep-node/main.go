// Command acep-node runs a cluster worker node: it hosts a block of
// shard engines behind a TCP listener and serves ingress sessions
// (cmd/acep-run -connect, or any cluster.Ingress). Incoming batch
// frames decode zero-copy into a per-session event arena and matches
// are emitted as pre-encoded wire bytes from the shard workers (see
// DESIGN.md "Wire-to-match data flow"). With -in, the node is
// configured with the same workload schema and pattern as the ingress —
// the handshake compares fingerprints and refuses to pair otherwise —
// so both sides point -in at the same CSV (only the header is needed
// here; the events stay at the ingress).
//
//	acep-gen -dataset traffic -keys 64 -o keyed.csv
//	acep-node -listen 127.0.0.1:7101 -in keyed.csv -kind sequence -size 4 -shards 2 &
//	acep-node -listen 127.0.0.1:7102 -in keyed.csv -kind sequence -size 4 -shards 2 &
//	acep-run  -in keyed.csv -kind sequence -size 4 -connect 127.0.0.1:7101,127.0.0.1:7102
//
// Without -in, the node runs bare: it serves any ingress, adopting the
// pattern and schema shipped in the handshake. A bare node is also the
// standby of the failover subsystem — point acep-run's -standby at it
// and it adopts a dead worker's shard block on demand:
//
//	acep-node -listen 127.0.0.1:7190 &
//	acep-run -in keyed.csv -connect ... -recover -standby 127.0.0.1:7190
//
// Coordinator epochs: every ingress session declares its coordinator
// epoch in the handshake, and the node latches the highest epoch it has
// served. When a replicated coordinator (acep-run -ha) fails over, the
// successor re-dials at epoch+1 and the node fences the dead primary —
// a partitioned old coordinator that reconnects at a lower epoch is
// refused rather than allowed to split the match stream.
//
// Overload control applies at the node's ingress: -shed picks the
// shedding policy each local shard engine runs with (budgets: -shed-pms,
// -shed-rate, and the -shed-wait p99 queue-wait latency target), and
// -queue-cap bounds the local ingestion queues (-overflow drop makes
// them lossy instead of backpressuring the network reader).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"acep/internal/cluster"
	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/pattern"
	"acep/internal/shard"
	"acep/internal/shed"
	"acep/internal/stream"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "TCP address to serve ingress sessions on")
		in       = flag.String("in", "", "workload CSV whose schema/pattern this node serves; empty runs a bare node that adopts the ingress's shipped pattern (standby mode)")
		kindStr  = flag.String("kind", "sequence", "pattern family: sequence, conjunction, negation, kleene, composite")
		size     = flag.Int("size", 3, "pattern size")
		window   = flag.Int64("window", 150, "pattern window in logical ms")
		model    = flag.String("model", "greedy", "evaluation model: greedy (order-based NFA) or zstream (tree)")
		policy   = flag.String("policy", "invariant", "adaptation policy: static, unconditional, threshold, invariant")
		tFlag    = flag.Float64("t", 0.3, "threshold for -policy threshold")
		dFlag    = flag.Float64("d", 0.2, "distance for -policy invariant")
		kFlag    = flag.Int("k", 1, "invariants per building block (K-invariant method)")
		check    = flag.Int("check", 500, "adaptation check interval in events")
		shards   = flag.Int("shards", 1, "local shard engines this node hosts")
		batch    = flag.Int("batch", 0, "local handoff batch (0 = default)")
		keyAttr  = flag.String("key", "key", "partition-key attribute")
		shedPol  = flag.String("shed", "none", "load-shedding policy: none, random, rate-utility, pattern-aware")
		shedTgt  = flag.Float64("shed-target", 0.3, "drop fraction the shedding policy aims for while overloaded")
		shedPMs  = flag.Int("shed-pms", 0, "live partial-match budget per shard engine")
		shedEPS  = flag.Float64("shed-rate", 0, "arrival-rate budget in events per logical second")
		shedWait = flag.Duration("shed-wait", 0, "p99 ingestion queue-wait budget (latency-aware shedding; 0 = off)")
		qcap     = flag.Int("queue-cap", 0, "per-shard ingestion queue bound in events (0 = default)")
		overfl   = flag.String("overflow", "block", "full-queue behavior: block (backpressure) or drop")
		once     = flag.Bool("once", false, "serve a single ingress session and exit")
	)
	flag.Parse()
	// With -in the node pins pattern and schema (the handshake
	// fingerprint-checks them against the ingress); without it the node
	// is bare and adopts whatever the ingress ships.
	var pat *pattern.Pattern
	var schema *event.Schema
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		w, err := stream.ReadCSV(f)
		f.Close()
		if err != nil {
			fail(err)
		}

		var kind gen.Kind
		switch *kindStr {
		case "sequence":
			kind = gen.Sequence
		case "conjunction":
			kind = gen.Conjunction
		case "negation":
			kind = gen.Negation
		case "kleene":
			kind = gen.Kleene
		case "composite":
			kind = gen.Composite
		default:
			fail(fmt.Errorf("unknown kind %q", *kindStr))
		}
		pat, err = w.Pattern(kind, *size, event.Time(*window))
		if err != nil {
			fail(err)
		}
		schema = w.Schema
	}

	m := engine.GreedyNFA
	if *model == "zstream" {
		m = engine.ZStreamTree
	} else if *model != "greedy" {
		fail(fmt.Errorf("unknown model %q", *model))
	}
	newPolicy := func() core.Policy {
		switch *policy {
		case "static":
			return core.Static{}
		case "unconditional":
			return core.Unconditional{}
		case "threshold":
			return &core.Threshold{T: *tFlag}
		case "invariant":
			return &core.Invariant{K: *kFlag, D: *dFlag}
		default:
			fail(fmt.Errorf("unknown policy %q", *policy))
			return nil
		}
	}
	var shedCfg shed.Config
	switch *shedPol {
	case "none", "":
	case "random":
		shedCfg.Policy = shed.Random{P: *shedTgt}
	case "rate-utility":
		shedCfg.Policy = shed.RateUtility{Target: *shedTgt}
	case "pattern-aware":
		shedCfg.Policy = shed.PatternAware{Target: *shedTgt}
	default:
		fail(fmt.Errorf("unknown shedding policy %q", *shedPol))
	}
	if shedCfg.Policy != nil {
		shedCfg.Budget = shed.Budget{LivePMs: *shedPMs, EventsPerSec: *shedEPS, QueueWait: *shedWait}
		if *shedPMs <= 0 && *shedEPS <= 0 && *shedWait <= 0 {
			fail(fmt.Errorf("-shed %s needs a budget: set -shed-pms, -shed-rate and/or -shed-wait", *shedPol))
		}
	}
	overflow := shard.Backpressure
	switch *overfl {
	case "block":
	case "drop":
		overflow = shard.DropNewest
	default:
		fail(fmt.Errorf("unknown overflow mode %q (want block or drop)", *overfl))
	}

	node, err := cluster.NewNode(cluster.NodeConfig{
		Pattern: pat,
		Engine: engine.Config{
			Model:      m,
			NewPolicy:  newPolicy,
			CheckEvery: *check,
			Shedding:   shedCfg,
		},
		Shards:   *shards,
		Batch:    *batch,
		QueueCap: *qcap,
		Overflow: overflow,
		KeyAttr:  *keyAttr,
		Schema:   schema,
	})
	if err != nil {
		fail(err)
	}

	l, err := cluster.ListenTCP(*listen)
	if err != nil {
		fail(err)
	}
	if pat != nil {
		log.Printf("acep-node: serving %d shard(s) of %s on %s", *shards, pat, l.Addr())
	} else {
		log.Printf("acep-node: bare node (standby) with %d shard(s) on %s", *shards, l.Addr())
	}
	if *once {
		c, err := l.Accept()
		if err != nil {
			fail(err)
		}
		if err := node.Serve(c); err != nil {
			fail(err)
		}
		log.Printf("acep-node: session complete")
		return
	}
	err = node.ServeListener(l, func(err error) {
		log.Printf("acep-node: session error: %v", err)
	})
	fail(err)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "acep-node: %v\n", err)
	os.Exit(1)
}
