// Package acep is an adaptive complex event processing (CEP) library: it
// detects declarative patterns (sequences, conjunctions, disjunctions,
// negation, Kleene closure, inter-event predicates, sliding windows) over
// event streams, and continuously re-optimizes its evaluation plan as the
// statistical properties of the input change.
//
// The adaptation machinery implements Kolchinsky & Schuster, "Efficient
// Adaptive Detection of Complex Event Patterns" (VLDB 2018): during plan
// generation every block-building comparison is captured as a deciding
// condition, the tightest conditions become invariants, and the system
// reoptimizes exactly when an invariant is violated — provably avoiding
// false-positive reoptimizations (paper Theorem 1). The library ships
// both evaluation models the paper studies (order-based lazy NFA with the
// greedy planner, and ZStream-style evaluation trees with a dynamic-
// programming planner) plus the baseline adaptation policies it compares
// against (static, unconditional, constant-threshold).
//
// # Quick start
//
//	schema := acep.NewSchema()
//	a := schema.MustAddType("A", "person_id")
//	b := schema.MustAddType("B", "person_id")
//	c := schema.MustAddType("C", "person_id")
//
//	pb := acep.NewPattern(schema, acep.Seq, 10*acep.Minute)
//	pa, pbPos, pc := pb.Event(a), pb.Event(b), pb.Event(c)
//	pb.WhereEq(pa, "person_id", pbPos, "person_id")
//	pb.WhereEq(pbPos, "person_id", pc, "person_id")
//	pattern := pb.MustBuild()
//
//	eng, _ := acep.NewEngine(pattern, acep.Config{
//		Policy:  acep.NewInvariantPolicy(acep.InvariantOptions{}),
//		OnMatch: func(m *acep.Match) { fmt.Println(m) },
//	})
//	for _, ev := range events {
//		eng.Process(&ev)
//	}
//	eng.Finish()
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the paper-experiment index.
package acep

import (
	"fmt"
	"time"

	"acep/internal/cluster"
	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/ha"
	"acep/internal/match"
	"acep/internal/multi"
	"acep/internal/pattern"
	recovery "acep/internal/recover"
	"acep/internal/sase"
	"acep/internal/shard"
	"acep/internal/shed"
	"acep/internal/stats"
)

// Core data types, re-exported from the internal packages. The aliases
// carry their methods; see the internal package docs for details.
type (
	// Event is a primitive input event.
	Event = event.Event
	// Time is a logical timestamp in milliseconds.
	Time = event.Time
	// Schema registers event types and their attributes.
	Schema = event.Schema
	// Pattern is a compiled, immutable pattern.
	Pattern = pattern.Pattern
	// PatternBuilder assembles a Pattern.
	PatternBuilder = pattern.Builder
	// Pred is a predicate over one or two pattern positions.
	Pred = pattern.Pred
	// Match is one detected pattern occurrence.
	Match = match.Match
	// Snapshot is an immutable statistics snapshot (arrival rates and
	// predicate selectivities).
	Snapshot = stats.Snapshot
	// StatsConfig tunes the statistics estimator.
	StatsConfig = stats.Config
	// Policy is a reoptimizing decision function D.
	Policy = core.Policy
	// Engine is the adaptive detection engine.
	Engine = engine.Engine
	// Config assembles an Engine.
	Config = engine.Config
	// Metrics aggregates an Engine's counters.
	Metrics = engine.Metrics
	// Workload is a generated synthetic event stream.
	Workload = gen.Workload
)

// Time units.
const (
	Millisecond = event.Millisecond
	Second      = event.Second
	Minute      = event.Minute
)

// Pattern operators.
const (
	// Seq detects events in declaration order.
	Seq = pattern.Seq
	// And detects events in any order within the window.
	And = pattern.And
)

// Predicate comparison operators.
const (
	LT        = pattern.LT
	LE        = pattern.LE
	GT        = pattern.GT
	GE        = pattern.GE
	EQ        = pattern.EQ
	NE        = pattern.NE
	AbsDiffLT = pattern.AbsDiffLT
)

// Evaluation models.
const (
	// GreedyNFA uses order-based plans on a lazy NFA (greedy planner).
	GreedyNFA = engine.GreedyNFA
	// ZStreamTree uses tree-based plans on a ZStream-style engine
	// (dynamic-programming planner).
	ZStreamTree = engine.ZStreamTree
)

// NewSchema creates an empty event schema.
func NewSchema() *Schema { return event.NewSchema() }

// NewPattern starts building a pattern with the given root operator (Seq
// or And) and sliding window.
func NewPattern(s *Schema, op pattern.Op, window Time) *PatternBuilder {
	return pattern.NewBuilder(s, op, window)
}

// Or combines built patterns into a disjunction; each disjunct is
// detected (and adapts) independently.
func Or(subs ...*Pattern) (*Pattern, error) { return pattern.NewOr(subs...) }

// ParsePattern compiles a SASE-style textual specification (the syntax
// used in the paper), e.g.
//
//	PATTERN SEQ(A a, B b, C c)
//	WHERE a.person_id = b.person_id AND b.person_id = c.person_id
//	WITHIN 10 minutes
//
// Negation is written "~B b" and Kleene closure "C+ c"; see the
// internal/sase package for the full grammar.
func ParsePattern(s *Schema, src string) (*Pattern, error) { return sase.Parse(s, src) }

// NewEngine builds an adaptive engine for the pattern.
func NewEngine(p *Pattern, cfg Config) (*Engine, error) { return engine.New(p, cfg) }

// Sharded parallel execution: the input stream is partitioned by a key,
// each shard runs a fully independent adaptive engine on its own
// goroutine (own plan, statistics and invariants — the paper's method
// applies per partition, §7), and matches merge back into one
// deterministic, detection-ordered output. See DESIGN.md ("Sharded
// execution") for the architecture and ordering guarantees.
type (
	// ShardedEngine is the key-partitioned parallel engine.
	ShardedEngine = shard.Engine
	// ShardedConfig tunes partitioning, batching and match delivery.
	ShardedConfig = shard.Options
	// ShardKeyFunc extracts an event's partition key.
	ShardKeyFunc = shard.KeyFunc
)

// NewShardedEngine builds a sharded adaptive engine. cfg configures every
// shard's engine identically (leave Policy nil; set NewPolicy for a
// non-default policy so each shard adapts independently); sc selects the
// partition key — either a named attribute validated for partitionability
// (KeyAttr + Schema) or a custom extractor (Key) — and receives the
// merged matches through sc.OnMatch.
//
//	eng, err := acep.NewShardedEngine(pattern, acep.Config{}, acep.ShardedConfig{
//		Shards:  8,
//		KeyAttr: "person_id",
//		Schema:  schema,
//		OnMatch: func(m *acep.Match) { ... },
//	})
func NewShardedEngine(p *Pattern, cfg Config, sc ShardedConfig) (*ShardedEngine, error) {
	return shard.New(p, cfg, sc)
}

// ShardKeyByAttr builds a key extractor for the named attribute, which
// every event type in the schema must carry.
func ShardKeyByAttr(s *Schema, attr string) (ShardKeyFunc, error) {
	return shard.ByAttrName(s, attr)
}

// ShardPartitionable reports whether the pattern can be detected
// shard-locally when partitioned by the named attribute: equality-on-key
// predicates must connect every pattern position.
func ShardPartitionable(p *Pattern, s *Schema, attr string) error {
	return shard.Partitionable(p, s, attr)
}

// Distributed execution: the cluster layer scales the sharded engine
// across worker nodes. An ingress coordinator partitions the stream by
// key across nodes with the same consistent placement the shard layer
// uses locally, drives uniform watermark cuts (idle nodes still advance),
// and merges the node match streams into one deterministic, ordered
// output that is byte-identical to the single-process sharded engine's
// for key-partitionable patterns. Nodes are either spawned in-process
// (ClusterConfig.Nodes, chan transport) or connected over TCP
// (ClusterConfig.Connect, workers started with cmd/acep-node). See
// DESIGN.md ("Distributed execution").
type (
	// ClusterIngress is the cluster coordinator: Process events, Finish,
	// read merged or per-node Metrics (and Failovers/Migrations, with
	// recovery enabled). With recovery it is also elastic: AddNode admits
	// a freshly dialed worker at runtime, Drain gracefully empties one,
	// and MigrateShard moves a single shard by hand.
	ClusterIngress = cluster.Ingress
	// ClusterFailover records one recovered node failure: cause,
	// detection time, replayed history, and when the successor caught
	// up (RecoveryTime).
	ClusterFailover = recovery.Failover
	// ClusterMigration records one shard changing owner (the primitive
	// failover, rebalancing, scale-out and drain are built from): why it
	// moved, what was replayed, and the delivery pause it cost (Pause).
	ClusterMigration = recovery.Migration
	// ClusterElastic tunes the ingress placement controller (see
	// cluster.ElasticConfig): with Rebalance set the ingress migrates the
	// busiest shard off the hottest node when per-shard queue-wait p99
	// snapshots show sustained skew.
	ClusterElastic = cluster.ElasticConfig
	// HAIngress is a replicated coordinator pair (StandbyIngress mode): a
	// primary ingress with a hot standby mirroring every sealed cut over
	// a replication link, able to assume the whole cluster on primary
	// death with the delivered stream staying byte-identical. Process and
	// Finish mirror ClusterIngress; Takeover and Degraded report the
	// incidents.
	HAIngress = ha.Pair
	// ClusterTakeover records one coordinator takeover: detection,
	// re-dialed workers, replayed mirror volume, and the output pause it
	// cost (Pause).
	ClusterTakeover = recovery.Takeover
)

// ClusterConfig assembles a distributed cluster behind one ingress.
type ClusterConfig struct {
	// Connect lists the TCP addresses of running worker nodes (started
	// with cmd/acep-node, which must serve the same pattern and schema —
	// the handshake verifies fingerprints). When empty, Nodes in-process
	// workers are spawned instead.
	Connect []string
	// Nodes is the in-process worker count (default 2; ignored with
	// Connect set).
	Nodes int
	// ShardsPerNode is each in-process node's shard-engine count
	// (default 1; remote nodes choose their own via acep-node -shards).
	ShardsPerNode int
	// Batch is the events-per-cut of the ingress (default 256).
	Batch int
	// QueueCap bounds each in-process node's per-shard ingestion queue
	// in events (see ShardedConfig.QueueCap).
	QueueCap int
	// KeyAttr + Schema (or a custom Key) select the partition key, with
	// the same partitionability validation as NewShardedEngine.
	KeyAttr string
	Schema  *Schema
	Key     ShardKeyFunc
	// OnMatch receives every match in the merged deterministic order.
	OnMatch func(*Match)
	// Patterns hosts a multi-pattern set behind the ingress instead of a
	// single pattern (pass p nil to NewClusterIngress): workers are bare,
	// the set rides every handshake (including failover and migration),
	// shared sub-patterns evaluate once per event, and matches arrive
	// pattern-tagged through OnTagged. The returned ingress can
	// AddPattern / RemovePattern at runtime without disturbing the other
	// patterns' output.
	Patterns []MultiSpec
	// Tenants installs per-tenant admission budgets (Patterns mode
	// only); per-tenant accounting surfaces through the ingress's
	// TenantStats.
	Tenants map[uint32]TenantBudget
	// OnTagged receives pattern-tagged matches (Patterns mode; exactly
	// one of OnMatch / OnTagged).
	OnTagged func(TaggedMatch)
	// Recover enables fault-tolerant failover: the ingress journals its
	// cuts (bounded by MaxJournalBytes) and, when a worker dies, hands
	// the lost shard block to a standby — dialed from Standby in Connect
	// mode, or spawned in-process (at most StandbyNodes, default 2)
	// otherwise — which replays the journaled history and suppresses
	// already-delivered matches, keeping the output stream exactly the
	// healthy one. Without Recover a node failure surfaces as an error
	// from Finish.
	Recover bool
	// Standby lists TCP addresses of standby workers (bare acep-node
	// processes work: the pattern ships in the handshake), dialed lazily
	// at failover time. Connect mode only.
	Standby []string
	// StandbyNodes bounds in-process standby spawning (local mode).
	StandbyNodes int
	// HeartbeatTimeout declares a silent node dead even without a
	// transport error (0: transport errors only).
	HeartbeatTimeout time.Duration
	// MaxJournalBytes bounds the cut journal (default 256 MiB).
	MaxJournalBytes int64
	// OnFailover observes each recovered failure as it completes.
	OnFailover func(ClusterFailover)
	// Elastic enables and tunes the placement controller (requires
	// Recover when Rebalance is set).
	Elastic *ClusterElastic
	// StandbyIngress replicates the coordinator itself: build with
	// NewHAIngress (Connect mode only) to run a hot-standby ingress that
	// mirrors every sealed cut and takes the cluster over on primary
	// death. NewClusterIngress rejects the flag so a replicated intent
	// cannot silently downgrade to a single coordinator.
	StandbyIngress bool
}

// NewClusterIngress builds a distributed cluster ingress for the
// pattern. cfg configures the engines of in-process nodes exactly like
// NewShardedEngine's engine config (ignored for Connect mode, where each
// remote worker owns its engine configuration).
//
//	ing, err := acep.NewClusterIngress(pattern, acep.Config{}, acep.ClusterConfig{
//		Nodes:         3,
//		ShardsPerNode: 2,
//		KeyAttr:       "key",
//		Schema:        w.Schema,
//		OnMatch:       func(m *acep.Match) { ... },
//	})
//	for i := range events { ing.Process(&events[i]) }
//	err = ing.Finish()
func NewClusterIngress(p *Pattern, cfg Config, cc ClusterConfig) (*ClusterIngress, error) {
	if cc.StandbyIngress {
		return nil, fmt.Errorf("acep: StandbyIngress needs NewHAIngress (a replicated pair has its own lifecycle)")
	}
	if len(cc.Connect) > 0 {
		conns := make([]cluster.Conn, len(cc.Connect))
		for i, addr := range cc.Connect {
			c, err := cluster.DialTCP(addr)
			if err != nil {
				for _, open := range conns[:i] {
					open.Close() // release the workers already dialed
				}
				return nil, err
			}
			conns[i] = c
		}
		opts := cluster.IngressOptions{
			Batch:    cc.Batch,
			Key:      cc.Key,
			KeyAttr:  cc.KeyAttr,
			Schema:   cc.Schema,
			OnMatch:  cc.OnMatch,
			OnTagged: cc.OnTagged,
			Patterns: cc.Patterns,
			Tenants:  cc.Tenants,
			Elastic:  cc.Elastic,
		}
		if cc.Recover {
			if len(cc.Standby) == 0 {
				for _, open := range conns {
					open.Close()
				}
				return nil, fmt.Errorf("acep: Recover over Connect needs at least one Standby address")
			}
			opts.Recovery = &cluster.RecoveryConfig{
				HeartbeatTimeout: cc.HeartbeatTimeout,
				MaxJournalBytes:  cc.MaxJournalBytes,
				OnFailover:       cc.OnFailover,
				Standby:          cluster.DialStandbys(cc.Standby),
			}
		}
		return cluster.NewIngress(p, conns, opts)
	}
	return cluster.StartLocal(p, cfg, cluster.LocalConfig{
		Nodes:            cc.Nodes,
		ShardsPerNode:    cc.ShardsPerNode,
		Batch:            cc.Batch,
		QueueCap:         cc.QueueCap,
		Key:              cc.Key,
		KeyAttr:          cc.KeyAttr,
		Schema:           cc.Schema,
		OnMatch:          cc.OnMatch,
		OnTagged:         cc.OnTagged,
		Patterns:         cc.Patterns,
		Tenants:          cc.Tenants,
		Recover:          cc.Recover,
		Standbys:         cc.StandbyNodes,
		HeartbeatTimeout: cc.HeartbeatTimeout,
		MaxJournalBytes:  cc.MaxJournalBytes,
		OnFailover:       cc.OnFailover,
		Elastic:          cc.Elastic,
	})
}

// NewHAIngress builds a replicated coordinator pair over running TCP
// worker nodes: a primary ingress plus a hot standby that mirrors every
// sealed cut, the owner table and the release boundary over a
// replication link, and can assume every worker on primary death with
// the delivered stream byte-identical to an unkilled run. Matches
// arrive through OnMatch (or OnTagged) exactly as with
// NewClusterIngress; ClusterConfig.Standby seeds the shared worker
// standby pool.
//
//	ing, err := acep.NewHAIngress(pattern, acep.ClusterConfig{
//		Connect:        []string{"host1:7001", "host2:7001"},
//		StandbyIngress: true,
//		KeyAttr:        "key",
//		Schema:         w.Schema,
//		OnMatch:        func(m *acep.Match) { ... },
//	})
func NewHAIngress(p *Pattern, cc ClusterConfig) (*HAIngress, error) {
	if !cc.StandbyIngress {
		return nil, fmt.Errorf("acep: NewHAIngress needs ClusterConfig.StandbyIngress set")
	}
	if len(cc.Connect) == 0 {
		return nil, fmt.Errorf("acep: NewHAIngress needs Connect worker addresses (in-process nodes share the coordinator's fate)")
	}
	if (cc.OnMatch == nil) == (cc.OnTagged == nil) {
		return nil, fmt.Errorf("acep: NewHAIngress needs exactly one of OnMatch and OnTagged")
	}
	onTagged := cc.OnTagged
	if onTagged == nil {
		om := cc.OnMatch
		onTagged = func(t TaggedMatch) { om(t.M) }
	}
	return ha.New(ha.Config{
		Pattern:          p,
		Schema:           cc.Schema,
		KeyAttr:          cc.KeyAttr,
		Batch:            cc.Batch,
		Workers:          cc.Connect,
		Standbys:         cc.Standby,
		OnTagged:         onTagged,
		HeartbeatTimeout: cc.HeartbeatTimeout,
		MaxJournalBytes:  cc.MaxJournalBytes,
	})
}

// Multi-pattern, multi-tenant execution: one engine set hosts many
// patterns over a single stream, evaluating shared work once — distinct
// unary predicates are interned into one set-wide verdict table, and
// patterns sharing a SEQ prefix subscribe to one shared prefix runner
// that seeds their suffix automata. Per-pattern output is exactly what
// an independent engine would produce. Tenants own patterns and can be
// given admission budgets (token buckets in logical event time) so one
// tenant's overload sheds only its own recall. Available at every
// layer: NewShardedEngine with ShardedConfig.Patterns, and
// NewClusterIngress with ClusterConfig.Patterns (both with a nil
// pattern argument); matches arrive pattern-tagged through OnTagged.
// See DESIGN.md ("Multi-pattern & tenancy").
type (
	// MultiSpec registers one pattern of a multi-pattern set: a
	// set-unique nonzero id, the owning tenant, the pattern itself, and
	// the engine configuration used when it evaluates independently.
	MultiSpec = multi.Spec
	// MultiPatternMetrics is one pattern's engine counters, tagged with
	// its id and tenant (ShardedEngine.PatternMetrics,
	// ClusterIngress.PatternMetrics).
	MultiPatternMetrics = multi.PatternMetrics
	// TaggedMatch is one merge-ordered match delivery annotated with the
	// emitting pattern's id (the Pattern field; multi mode only).
	TaggedMatch = shard.Tagged
	// TenantBudget is one tenant's admission budget: a token bucket
	// refilled in logical (event-time) seconds, so gating decisions are
	// deterministic functions of the stream.
	TenantBudget = shed.TenantBudget
	// TenantStat is one tenant's admission accounting (events admitted
	// and shed).
	TenantStat = shed.TenantStat
)

// Overload control (load shedding): when the input rate exceeds what even
// the best evaluation plan can absorb, the shedding layer drops events
// before detection, trading match recall for bounded resource usage.
// Configure it through Config.Shedding: pick a policy, set a Budget, and
// the engine sheds only while over budget. Shedding never drops events of
// negated pattern positions, so detected matches stay precise (a subset
// of the full match set for negation-free patterns). All decisions are
// deterministic functions of the stream and the configuration. See
// DESIGN.md ("Overload control") for the architecture.
type (
	// ShedPolicy decides which events to drop while overloaded.
	ShedPolicy = shed.Policy
	// SheddingConfig configures the overload-control layer of an engine
	// (the Shedding field of Config).
	SheddingConfig = shed.Config
	// ShedBudget sets the capacity targets the load monitor measures
	// utilization against.
	ShedBudget = shed.Budget
)

// Shard ingestion-queue overflow modes (ShardedConfig.Overflow).
const (
	// ShardBackpressure blocks ingestion while a shard's bounded queue is
	// full (lossless, the default).
	ShardBackpressure = shard.Backpressure
	// ShardDropNewest discards overflowing handoffs and counts the lost
	// events in Metrics().QueueDropped (lossy, never blocks).
	ShardDropNewest = shard.DropNewest
)

// NewShedNone returns the disabled shedding policy: the load monitor runs
// (utilization is reported) but no event is ever dropped.
func NewShedNone() ShedPolicy { return shed.None{} }

// NewShedRandom returns the uniform baseline policy: while overloaded,
// every event is dropped with probability p.
func NewShedRandom(p float64) ShedPolicy { return shed.Random{P: p} }

// NewShedRateUtility returns the statistics-driven policy: while
// overloaded it sheds the target fraction of the stream starting from the
// event types of highest arrival rate and lowest predicate selectivity
// (computed from the engine's own statistics snapshots); event types the
// pattern never references are shed first at zero recall cost.
func NewShedRateUtility(target float64) ShedPolicy { return shed.RateUtility{Target: target} }

// NewShedPatternAware returns the liveness-driven policy: events whose
// type could extend a live partial match — or whose partition key occurs
// in one — are never dropped, and the remaining events are dropped at a
// compensated rate so the stream-wide drop fraction still meets target.
// At equal drop rate it retains strictly more matches than NewShedRandom
// on keyed workloads (see the shed-traffic experiment in acep-bench).
func NewShedPatternAware(target float64) ShedPolicy { return shed.PatternAware{Target: target} }

// NewStaticPolicy returns the no-adaptation baseline: the initial plan is
// kept forever.
func NewStaticPolicy() Policy { return core.Static{} }

// NewUnconditionalPolicy returns the baseline that re-runs plan
// generation on every adaptation check.
func NewUnconditionalPolicy() Policy { return core.Unconditional{} }

// NewThresholdPolicy returns the constant-threshold baseline: it requests
// reoptimization when any monitored statistic deviates from its value at
// plan-installation time by the relative factor t.
func NewThresholdPolicy(t float64) Policy { return &core.Threshold{T: t} }

// InvariantOptions tunes the invariant-based decision policy.
type InvariantOptions struct {
	// K is the maximum number of invariants kept per building block
	// (default 1, the basic method; paper §3.3).
	K int
	// Distance is the minimal relative violation distance d (paper §3.4).
	Distance float64
	// AutoDistance derives the distance from the average relative
	// difference of the deciding conditions at every plan installation
	// (paper §3.4, the d_avg estimator).
	AutoDistance bool
}

// NewInvariantPolicy returns the paper's invariant-based reoptimizing
// decision function: it requests reoptimization exactly when a recorded
// plan invariant is violated, guaranteeing the new plan differs from the
// current one.
func NewInvariantPolicy(o InvariantOptions) Policy {
	return &core.Invariant{K: o.K, D: o.Distance, AutoDistance: o.AutoDistance}
}

// NewMetaInvariantPolicy returns the meta-adaptive invariant policy
// (paper §3.4, direction 3): the violation distance d is tuned on-the-fly
// from the outcomes of the reoptimization attempts the policy triggers —
// wasted attempts grow d, productive ones decay it back toward initialD.
func NewMetaInvariantPolicy(initialD float64) Policy {
	return &core.MetaInvariant{InitialD: initialD}
}

// Synthetic workload generation (the library's stand-ins for the paper's
// traffic and stocks datasets; see DESIGN.md).
type (
	// TrafficConfig tunes the skewed/stable/extreme-shift generator.
	TrafficConfig = gen.TrafficConfig
	// StocksConfig tunes the uniform/minor-drift generator.
	StocksConfig = gen.StocksConfig
	// PatternKind selects one of the five evaluation pattern families.
	PatternKind = gen.Kind
)

// Pattern families for generated workloads.
const (
	SequencePatterns    = gen.Sequence
	ConjunctionPatterns = gen.Conjunction
	NegationPatterns    = gen.Negation
	KleenePatterns      = gen.Kleene
	CompositePatterns   = gen.Composite
)

// NewTrafficWorkload generates a traffic-like stream: highly skewed,
// stable arrival rates with rare extreme regime shifts.
func NewTrafficWorkload(cfg TrafficConfig) *Workload { return gen.Traffic(cfg) }

// NewStocksWorkload generates a stocks-like stream: near-uniform arrival
// rates with frequent minor fluctuations.
func NewStocksWorkload(cfg StocksConfig) *Workload { return gen.Stocks(cfg) }
