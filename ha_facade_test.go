package acep_test

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"acep"
	"acep/internal/cluster"
)

// TestFacadeHA runs the quick-start person pattern through a replicated
// coordinator pair over loopback-TCP workers, kills the primary halfway,
// and checks the delivered match set against the single-threaded engine
// — the facade-level slice of the ingress-HA takeover property.
func TestFacadeHA(t *testing.T) {
	schema, pat, types := personPattern(t)

	// 200 persons per step: enough cuts (batch 16) for the standby's
	// mirror to be warm at the kill point.
	var events []acep.Event
	seq := uint64(0)
	for step, typ := range types {
		for person := 0; person < 200; person++ {
			seq++
			events = append(events, acep.Event{
				Type:  typ,
				TS:    acep.Time(step*200+person) * acep.Second,
				Seq:   seq,
				Attrs: []float64{float64(person)},
			})
		}
	}

	var want []string
	single, err := acep.NewEngine(pat, acep.Config{
		OnMatch: func(m *acep.Match) { want = append(want, m.Key()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		single.Process(&events[i])
	}
	single.Finish()
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("reference found no matches")
	}

	// Loopback-TCP worker nodes: the replicated pair needs Connect mode.
	var addrs []string
	for i := 0; i < 2; i++ {
		node, err := cluster.NewNode(cluster.NodeConfig{
			Pattern: pat, Schema: schema,
			Shards: 2, Batch: 16, KeyAttr: "person_id",
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := cluster.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go node.ServeListener(l, nil) //nolint:errcheck // killed sessions error by design
		addrs = append(addrs, l.Addr())
	}

	var got []string
	ing, err := acep.NewHAIngress(pat, acep.ClusterConfig{
		Connect:        addrs,
		StandbyIngress: true,
		Batch:          16,
		KeyAttr:        "person_id",
		Schema:         schema,
		OnMatch:        func(m *acep.Match) { got = append(got, m.Key()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	killAt := len(events) / 2
	for i := range events {
		if i == killAt {
			if err := ing.KillPrimary(); err != nil {
				t.Fatal(err)
			}
		}
		ing.Process(&events[i])
	}
	if err := ing.Finish(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HA takeover run delivered %d matches, reference %d", len(got), len(want))
	}
	tk := ing.Takeover()
	if tk == nil {
		t.Fatal("killed primary recorded no takeover")
	}
	if tk.Epoch != 2 || tk.Workers != 2 {
		t.Fatalf("takeover = %+v, want epoch 2 over 2 workers", tk)
	}
	if deg, cause := ing.Degraded(); deg {
		t.Fatalf("successor reported degraded: %s", cause)
	}
}

// TestFacadeHAConfigGates: a replicated-coordinator intent must not
// silently downgrade, and the pair constructor enforces its own
// preconditions.
func TestFacadeHAConfigGates(t *testing.T) {
	schema, pat, _ := personPattern(t)
	onMatch := func(*acep.Match) {}

	_, err := acep.NewClusterIngress(pat, acep.Config{}, acep.ClusterConfig{
		Nodes: 2, KeyAttr: "person_id", Schema: schema,
		StandbyIngress: true, OnMatch: onMatch,
	})
	if err == nil || !strings.Contains(err.Error(), "NewHAIngress") {
		t.Fatalf("NewClusterIngress with StandbyIngress: err = %v, want pointer to NewHAIngress", err)
	}

	_, err = acep.NewHAIngress(pat, acep.ClusterConfig{
		Connect: []string{"127.0.0.1:1"}, KeyAttr: "person_id", Schema: schema,
		OnMatch: onMatch,
	})
	if err == nil || !strings.Contains(err.Error(), "StandbyIngress") {
		t.Fatalf("NewHAIngress without the flag: err = %v", err)
	}

	_, err = acep.NewHAIngress(pat, acep.ClusterConfig{
		StandbyIngress: true, Nodes: 2, KeyAttr: "person_id", Schema: schema,
		OnMatch: onMatch,
	})
	if err == nil || !strings.Contains(err.Error(), "Connect") {
		t.Fatalf("NewHAIngress without Connect: err = %v", err)
	}

	_, err = acep.NewHAIngress(pat, acep.ClusterConfig{
		StandbyIngress: true, Connect: []string{"127.0.0.1:1"},
		KeyAttr: "person_id", Schema: schema,
	})
	if err == nil || !strings.Contains(err.Error(), "OnMatch") {
		t.Fatalf("NewHAIngress without a sink: err = %v", err)
	}
}
