module acep

go 1.24
