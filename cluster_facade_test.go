package acep_test

import (
	"reflect"
	"sort"
	"testing"

	"acep"
)

// TestFacadeCluster runs the quick-start person pattern through the
// in-process cluster ingress at several node layouts and checks the
// match set against the single-threaded engine — the facade-level slice
// of the cluster layer's exactness property.
func TestFacadeCluster(t *testing.T) {
	schema, pat, types := personPattern(t)

	var events []acep.Event
	seq := uint64(0)
	for step, typ := range types {
		for person := 0; person < 40; person++ {
			seq++
			events = append(events, acep.Event{
				Type:  typ,
				TS:    acep.Time(step*60+person) * acep.Second,
				Seq:   seq,
				Attrs: []float64{float64(person)},
			})
		}
	}

	var want []string
	single, err := acep.NewEngine(pat, acep.Config{
		OnMatch: func(m *acep.Match) { want = append(want, m.Key()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		single.Process(&events[i])
	}
	single.Finish()
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("reference found no matches")
	}

	for _, layout := range []struct{ nodes, shards int }{{1, 1}, {2, 2}, {3, 1}} {
		var got []string
		ing, err := acep.NewClusterIngress(pat, acep.Config{}, acep.ClusterConfig{
			Nodes:         layout.nodes,
			ShardsPerNode: layout.shards,
			Batch:         16,
			KeyAttr:       "person_id",
			Schema:        schema,
			OnMatch:       func(m *acep.Match) { got = append(got, m.Key()) },
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range events {
			ing.Process(&events[i])
		}
		if err := ing.Finish(); err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("nodes=%d shards=%d: %d matches vs %d", layout.nodes, layout.shards, len(got), len(want))
		}
		if ing.Metrics().EventsArrived != uint64(len(events)) {
			t.Fatalf("nodes=%d: merged metrics missed events", layout.nodes)
		}
	}
}

// TestFacadeClusterRejectsUnpartitionable: the cluster enforces the same
// partitionability precondition as the sharded engine.
func TestFacadeClusterRejectsUnpartitionable(t *testing.T) {
	schema := acep.NewSchema()
	a := schema.MustAddType("A", "person_id")
	b := schema.MustAddType("B", "person_id")
	pb := acep.NewPattern(schema, acep.Seq, acep.Minute)
	pb.Event(a)
	pb.Event(b) // no WhereEq: matches may span persons
	pat := pb.MustBuild()
	_, err := acep.NewClusterIngress(pat, acep.Config{}, acep.ClusterConfig{
		Nodes:   2,
		KeyAttr: "person_id",
		Schema:  schema,
	})
	if err == nil {
		t.Fatal("unpartitionable pattern accepted")
	}
}
